"""Windowed stable-period statistics and the operational-law audit.

The load plane reports per-window throughput, utilization and latency
percentiles, then aggregates the *stable* windows (after a declared
warmup fraction) — the memtier-style stable-period methodology.

Every quantity is accounted **twice**, by independent mechanisms:

- *area integrals*: between events the engine integrates the running
  counters (users in system, busy threads, busy connections) over
  time — ``area = sum n(t) dt``;
- *per-user residence*: each completion adds its sojourn clipped to
  the window, and window close flushes the still-resident users'
  partial sojourns.

For a correctly-accounted simulation the two agree to float rounding
on **every** window, which makes the operational laws — Little's law
``N = X * R`` and the utilization law ``U = X * s`` with ``R``/``s``
the residence-derived times — *exact identities*, not statistical
checks.  :func:`operational_identity_errors` audits them; a seeded
accounting defect (see the oracle test suite) breaks the audit loudly
while leaving throughput plausible.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigError
from repro.loadplane.histogram import LatencyHistogram

#: Relative tolerance for the area-vs-residence float comparison.
IDENTITY_RTOL = 1e-9

#: ... plus an absolute floor in user-seconds for near-empty windows.
IDENTITY_ATOL = 1e-9


@dataclass
class WindowStats:
    """One window's raw accounting (mutable while the window is open)."""

    start_s: float
    end_s: float
    completions: int = 0
    arrivals: int = 0
    drops: int = 0
    #: Time-integral of users in the station system (area accounting).
    area_n: float = 0.0
    #: Per-user residence in the system, clipped to the window.
    residence_n: float = 0.0
    area_busy_threads: float = 0.0
    residence_busy_threads: float = 0.0
    area_busy_conns: float = 0.0
    residence_busy_conns: float = 0.0
    #: Sum of full (unclipped) response times of window completions.
    resp_sum_s: float = 0.0
    hist: LatencyHistogram = field(default_factory=LatencyHistogram)

    @property
    def duration_s(self) -> float:
        return self.end_s - self.start_s

    @property
    def throughput(self) -> float:
        """Completions per second (operational X)."""
        return self.completions / self.duration_s

    @property
    def mean_in_system(self) -> float:
        """Time-average users in the station system (operational N)."""
        return self.area_n / self.duration_s

    @property
    def response_time_s(self) -> float:
        """Operational response time R = N / X (residence per completion)."""
        if self.completions == 0:
            return 0.0
        return self.residence_n / self.completions

    def thread_utilization(self, threads: int) -> float:
        return self.area_busy_threads / (threads * self.duration_s)

    def conn_utilization(self, connections: int) -> float:
        if connections <= 0:
            return 0.0
        return self.area_busy_conns / (connections * self.duration_s)


def _mismatch(kind: str, w: WindowStats, area: float, residence: float) -> str:
    return (
        f"window [{w.start_s:g}, {w.end_s:g}) {kind}: area integral "
        f"{area!r} != per-user residence {residence!r}"
    )


def operational_identity_errors(windows: list[WindowStats]) -> list[str]:
    """Audit every window's operational-law identities.

    Checks, per window, that the independently-accumulated area
    integrals equal the per-user residence sums for the system
    population (Little's law ``N = X * R``), busy threads and busy
    connections (the utilization law ``U * c = X * s``).  An empty
    list means every window passed.
    """
    errors = []
    for w in windows:
        pairs = (
            ("users-in-system (Little)", w.area_n, w.residence_n),
            ("busy threads (utilization law)",
             w.area_busy_threads, w.residence_busy_threads),
            ("busy connections (utilization law)",
             w.area_busy_conns, w.residence_busy_conns),
        )
        for kind, area, residence in pairs:
            scale = max(abs(area), abs(residence))
            if abs(area - residence) > IDENTITY_RTOL * scale + IDENTITY_ATOL:
                errors.append(_mismatch(kind, w, area, residence))
    return errors


@dataclass(frozen=True)
class StableAggregate:
    """Stable-period (post-warmup) summary across windows."""

    windows: int
    duration_s: float
    completions: int
    arrivals: int
    drops: int
    throughput: float
    mean_in_system: float
    response_time_s: float  # operational R = N / X
    response_mean_s: float  # mean of completed response times
    p50_s: float
    p95_s: float
    p99_s: float
    thread_utilization: float
    conn_utilization: float


def aggregate_stable(
    windows: list[WindowStats],
    warmup_fraction: float,
    threads: int,
    connections: int,
) -> StableAggregate:
    """Fold the post-warmup windows into one stable-period summary."""
    if not windows:
        raise ConfigError("no windows to aggregate")
    if not 0.0 <= warmup_fraction < 1.0:
        raise ConfigError("warmup_fraction must be in [0, 1)")
    first = int(len(windows) * warmup_fraction)
    stable = windows[first:]
    duration = sum(w.duration_s for w in stable)
    completions = sum(w.completions for w in stable)
    hist = LatencyHistogram()
    for w in stable:
        hist.merge(w.hist)
    area_n = sum(w.area_n for w in stable)
    residence_n = sum(w.residence_n for w in stable)
    busy_t = sum(w.area_busy_threads for w in stable)
    busy_c = sum(w.area_busy_conns for w in stable)
    p50, p95, p99 = hist.percentiles()
    return StableAggregate(
        windows=len(stable),
        duration_s=duration,
        completions=completions,
        arrivals=sum(w.arrivals for w in stable),
        drops=sum(w.drops for w in stable),
        throughput=completions / duration,
        mean_in_system=area_n / duration,
        response_time_s=residence_n / completions if completions else 0.0,
        response_mean_s=hist.mean_s,
        p50_s=p50,
        p95_s=p95,
        p99_s=p99,
        thread_utilization=busy_t / (threads * duration),
        conn_utilization=busy_c / (connections * duration) if connections else 0.0,
    )
