"""Vectorized trace replay: numpy-native buffers and exact LRU kernels.

The scalar simulators (:mod:`repro.memsys.multisim`,
:mod:`repro.memsys.stackdist`) walk traces one reference at a time in
Python.  That loop dominates the Figure 12/13 cache-size sweeps and the
working-set profiles once traces reach hundreds of thousands of
references.  This module replays the *same* trace encoding —
``(byte_address << 2) | kind`` packed in ``uint64`` arrays, exactly as
:mod:`repro.memsys.block` defines it — through numpy kernels that are
bit-identical to the scalar implementations (enforced by
``tests/memsys/test_fastpath.py``).

Two kernels:

``lru_miss_mask``
    Exact per-access hit/miss for a set-associative true-LRU cache.
    Per-set LRU obeys Mattson's inclusion property, so an access misses
    iff at least ``assoc`` *distinct* blocks of the same set were
    touched since the previous access to its block.  The kernel tests
    that condition without per-reference Python: it computes, for every
    access, the position of the ``assoc``-th most recently used
    distinct block of its set (``M_A`` below) through a vectorized
    recurrence, and compares it against the access's own previous
    occurrence.  Set storage is a handful of flat position arrays — no
    dicts, no per-set objects.

``stack_distances``
    Full LRU stack distances (the profiler's histogram input) via an
    offline reformulation: the distance of an access equals its reuse
    gap minus the number of consecutive-occurrence intervals nested
    inside it, and the nested-interval counts are per-element inversion
    counts, computed by a vectorized bottom-up mergesort.

Both kernels are O(n log n) in numpy primitives; ``benchmarks/
test_fastpath_speedup.py`` gates the replay at >= 3x over the scalar
path on a Figure-12-sized trace.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

import numpy as np

from repro import obs as _obs
from repro.errors import ConfigError
from repro.memsys.block import IFETCH, INSTRUCTIONS_PER_IFETCH
from repro.memsys.config import CacheConfig

#: Environment switch: set to ``0``/``false`` to make every default-path
#: consumer (figure drivers, profiler) fall back to the scalar reference
#: implementation.  The harness cache key records the resolved value.
FASTPATH_ENV = "JMMW_FASTPATH"

_forced: bool | None = None


def set_fastpath(enabled: bool | None) -> None:
    """Process-wide override (CLI ``--no-fastpath``); ``None`` clears it."""
    global _forced
    _forced = enabled


def fastpath_enabled() -> bool:
    """Whether default-path consumers use the vectorized kernels."""
    if _forced is not None:
        return _forced
    return os.environ.get(FASTPATH_ENV, "1").lower() not in ("0", "false", "no")


def as_ref_array(trace) -> np.ndarray:
    """View/convert an encoded reference trace as a ``uint64`` array."""
    arr = np.asarray(trace, dtype=np.uint64)
    if arr.ndim != 1:
        raise ConfigError(f"trace must be one-dimensional, got shape {arr.shape}")
    return arr


# -- trace classification ------------------------------------------------


@dataclass(frozen=True)
class ClassifiedTrace:
    """One reference class of a trace, pre-split for replay.

    ``addrs`` are byte addresses (``ref >> 2``) of the selected class in
    trace order; ``positions`` are their indices in the original trace
    (needed to place a warmup split); ``ifetch_positions`` counts
    instruction fetches for MPKI denominators.
    """

    kind: str
    addrs: np.ndarray        # uint64 byte addresses, class refs only
    positions: np.ndarray    # int64 original trace indices of class refs
    n_refs: int              # total trace length
    n_ifetch: int            # total instruction fetches in the trace
    ifetch_cumulative: np.ndarray  # int64, ifetch count in trace[:i]

    @property
    def instructions(self) -> int:
        return self.n_ifetch * INSTRUCTIONS_PER_IFETCH

    def instructions_before(self, split: int) -> int:
        """Instructions represented by ``trace[:split]``."""
        if split <= 0:
            return 0
        split = min(split, self.n_refs)
        return int(self.ifetch_cumulative[split - 1]) * INSTRUCTIONS_PER_IFETCH

    def class_count_before(self, split: int) -> int:
        """Number of this class's references in ``trace[:split]``."""
        return int(np.searchsorted(self.positions, split, side="left"))


def classify_trace(trace, kind: str) -> ClassifiedTrace:
    """Split a packed trace into one reference class, vectorized."""
    if kind not in ("instr", "data"):
        raise ConfigError(f"kind must be 'instr' or 'data', got {kind!r}")
    refs = as_ref_array(trace)
    is_ifetch = (refs & np.uint64(0x3)) == IFETCH
    mask = is_ifetch if kind == "instr" else ~is_ifetch
    positions = np.flatnonzero(mask).astype(np.int64)
    return ClassifiedTrace(
        kind=kind,
        addrs=(refs >> np.uint64(2))[mask],
        positions=positions,
        n_refs=int(refs.size),
        n_ifetch=int(np.count_nonzero(is_ifetch)),
        ifetch_cumulative=np.cumsum(is_ifetch, dtype=np.int64),
    )


def block_stream(trace, kind: str, block_bits: int = 6) -> np.ndarray:
    """Block addresses of one reference class, as an ``int64`` array.

    The vectorized version of ``[r >> 2 >> block_bits for r in trace
    if <kind matches>]`` — the common profiler-feeding idiom.
    """
    classified = classify_trace(trace, kind)
    return (classified.addrs >> np.uint64(block_bits)).astype(np.int64)


# -- shared helpers -------------------------------------------------------


def _previous_occurrence(values: np.ndarray) -> np.ndarray:
    """Index of the previous equal element, or -1 (vectorized).

    ``out[i] = max{j < i : values[j] == values[i]}`` — the reuse
    structure both kernels are built on.
    """
    n = values.size
    out = np.full(n, -1, dtype=np.int64)
    if n == 0:
        return out
    order = np.argsort(values, kind="stable")
    sorted_vals = values[order]
    same = sorted_vals[1:] == sorted_vals[:-1]
    out[order[1:][same]] = order[:-1][same]
    return out


# -- kernel 1: exact set-associative LRU ---------------------------------


def _mru_rank_positions(
    f: np.ndarray, psb_star: np.ndarray, level_prev: np.ndarray
) -> np.ndarray:
    """One step of the MRU recurrence: ``M_{r+1}`` from ``M_r``.

    ``M_r[p]`` is the position of the r-th most recently used distinct
    block of p's set, scanning back from p inclusive (-1 if fewer than
    r distinct blocks exist).  ``f[p]`` is the previous same-set access
    with a different block, and ``psb_star[p]`` is the last occurrence
    of ``blocks[p]`` at or before ``f[p]`` (-1 if none).  Scanning back
    from ``p`` sees ``blocks[p]`` first, then the scan from ``q = f[p]``
    with ``blocks[p]``'s own entry deleted.  That entry sits at position
    ``psb_star[p]`` in the scan, so rank r of the filtered scan is rank
    r of the unfiltered one while ``M_r[q]`` is still above it::

        M_{r+1}[p] = M_r[q]      if M_r[q] > psb_star[p]
                   = M_{r+1}[q]  otherwise (entry already skipped)

    The second branch chases strictly decreasing positions, so it
    resolves by pointer-jumping in O(log n) vectorized rounds.
    """
    n = f.size
    res = np.full(n, -1, dtype=np.int64)
    has_q = f >= 0
    q_safe = np.where(has_q, f, 0)
    mrq = np.where(has_q, level_prev[q_safe], -1)
    # mrq == -1 never satisfies this (psb_star >= -1), and then
    # M_{r+1}[p] <= M_r[q] = -1, so res stays -1 without chasing.
    keep = mrq > psb_star
    res[keep] = mrq[keep]
    deferred = ~keep & (mrq >= 0)
    jump = np.where(deferred, f, -1)
    idx = np.flatnonzero(deferred)
    while idx.size:
        target = jump[idx]
        target_deferred = deferred[target]
        done = idx[~target_deferred]
        res[done] = res[jump[done]]
        deferred[done] = False
        idx = idx[target_deferred]
        jump[idx] = jump[jump[idx]]
    return res


def lru_miss_mask(
    blocks: np.ndarray,
    set_mask: int,
    assoc: int,
    prev: np.ndarray | None = None,
) -> np.ndarray:
    """Per-access miss flags for a set-associative true-LRU cache.

    Bit-identical to feeding ``blocks`` one at a time through
    :meth:`repro.memsys.cache.SetAssociativeCache.access` and recording
    the inverted return value.  ``prev`` (previous occurrence of each
    block) can be passed in when already computed.
    """
    _obs.incr("memsys/fastpath/lru_miss_mask")
    blocks = np.asarray(blocks, dtype=np.uint64)
    n = blocks.size
    if n == 0:
        return np.zeros(0, dtype=bool)
    if prev is None:
        prev = _previous_occurrence(blocks)
    cold = prev < 0
    if assoc <= 0:
        raise ConfigError(f"assoc must be positive, got {assoc}")

    set_idx = (blocks & np.uint64(set_mask)).astype(np.int64)
    # Occupancy shortcut: if no set ever holds `assoc` distinct blocks,
    # nothing is ever evicted and only cold accesses miss.
    if np.count_nonzero(cold) and set_mask >= 0:
        occupancy = np.bincount(set_idx[cold])
        if occupancy.max(initial=0) <= assoc:
            return cold.copy()

    order = np.argsort(set_idx, kind="stable")
    inverse = np.empty(n, dtype=np.int64)
    inverse[order] = np.arange(n, dtype=np.int64)

    b = blocks[order]
    group_start = np.empty(n, dtype=bool)
    group_start[0] = True
    sorted_sets = set_idx[order]
    group_start[1:] = sorted_sets[1:] != sorted_sets[:-1]

    # prev same-block occurrence, in sorted coordinates (same block =>
    # same set, and the stable sort preserves time order per set).
    prev_sb = np.where(prev >= 0, inverse[np.where(prev >= 0, prev, 0)], -1)[order]

    # Everything below runs on *runs* — maximal stretches of the same
    # block within a set group.  Accesses past a run's first element
    # are guaranteed hits (their previous occurrence is the position
    # just before them), and the M recurrence for every rank >= 2
    # depends only on the run's start: f and psb_star are constant
    # across the run, so M_{r+1} is run-constant too.  Real traces
    # collapse ~10x here, and the rank recurrence is the hot loop.
    new_run = group_start.copy()
    new_run[1:] |= b[1:] != b[:-1]
    rs = np.flatnonzero(new_run)  # run starts, sorted coordinates
    k = rs.size
    run_last = np.empty(k, dtype=np.int64)
    run_last[:-1] = rs[1:] - 1
    run_last[-1] = n - 1

    # f[j]: the run holding the previous same-set different-block
    # access — simply the preceding run, unless this run opens its set
    # group.  psb_star[j]: last occurrence of run j's block at or
    # before that access, i.e. the same-block predecessor of the run
    # start (positions inside the run all sit after f[j]'s run).
    f = np.where(group_start[rs], -1, np.arange(k, dtype=np.int64) - 1)
    psb_star = prev_sb[rs]
    cold_run = psb_star < 0  # only a run's first access can be cold

    # M_assoc: position of the assoc-th most recent distinct block,
    # evaluated at each run's *last* position (M_1[p] = p).
    level = run_last
    for _ in range(assoc - 1):
        level = _mru_rank_positions(f, psb_star, level)
        if not (level >= 0).any():
            break

    # Run j's first access (non-cold) misses iff the assoc-th most
    # recent distinct block just before it — M_assoc of the previous
    # run — is newer than the access's previous occurrence.
    jm1 = np.maximum(np.arange(k, dtype=np.int64) - 1, 0)
    run_miss = cold_run | (~cold_run & (level[jm1] > psb_star))

    miss_sorted = np.zeros(n, dtype=bool)
    miss_sorted[rs] = run_miss
    miss = np.empty(n, dtype=bool)
    miss[order] = miss_sorted
    return miss


@dataclass(frozen=True)
class ReplayCounters:
    """Access/miss totals for one cache geometry over one replay."""

    config: CacheConfig
    accesses: int
    misses: int
    warm_accesses: int
    warm_misses: int


def replay_counters(
    classified: ClassifiedTrace,
    configs: list[CacheConfig],
    split: int = 0,
) -> list[ReplayCounters]:
    """Replay one reference class through many geometries, vectorized.

    ``split`` is an index into the *original* trace; counters before it
    are reported separately (the warmup window of
    :func:`repro.memsys.multisim.simulate_miss_curve`).

    Consecutive same-block accesses are collapsed first (they are
    guaranteed hits at any associativity >= 1 and do not change any
    other access's distinct-block window); each distinct block size
    shares one reuse analysis across its geometries.
    """
    n_class = int(classified.addrs.size)
    split_class = classified.class_count_before(split)

    by_block_bits: dict[int, list[int]] = {}
    for i, cfg in enumerate(configs):
        by_block_bits.setdefault(cfg.block_bits, []).append(i)

    out: list[ReplayCounters | None] = [None] * len(configs)
    for block_bits, indices in by_block_bits.items():
        blocks = classified.addrs >> np.uint64(block_bits)
        # Collapse consecutive same-block accesses: guaranteed hits at
        # any associativity, and invisible to every other access's
        # distinct-block window.
        keep = np.empty(n_class, dtype=bool)
        if n_class:
            keep[0] = True
            keep[1:] = blocks[1:] != blocks[:-1]
            kept = blocks[keep]
            kept_pos = np.flatnonzero(keep)
            kept_before_split = int(np.searchsorted(kept_pos, split_class, side="left"))
        else:
            kept = blocks
            kept_before_split = 0
        prev = _previous_occurrence(kept)
        for i in indices:
            cfg = configs[i]
            miss = lru_miss_mask(kept, cfg.set_mask, cfg.assoc, prev=prev)
            out[i] = ReplayCounters(
                config=cfg,
                accesses=n_class,
                misses=int(np.count_nonzero(miss)),
                warm_accesses=split_class,
                warm_misses=int(np.count_nonzero(miss[:kept_before_split])),
            )
    return out


def miss_curve_points(trace, configs: list[CacheConfig], kind: str, split: int = 0):
    """Vectorized equivalent of the scalar warmup-split miss sweep.

    Returns ``MissCurvePoint`` objects bit-identical to replaying
    ``trace[:split]``, snapshotting, then replaying ``trace[split:]``
    through :class:`repro.memsys.multisim.MultiConfigSimulator`: the
    scalar simulator is deterministic, so post-warmup counters equal
    full-trace counters minus the prefix's.
    """
    from repro.memsys.multisim import MissCurvePoint

    classified = classify_trace(trace, kind)
    counters = replay_counters(classified, configs, split=split)
    instr = classified.instructions - classified.instructions_before(split)
    points = []
    for counter in counters:
        accesses = counter.accesses - counter.warm_accesses
        misses = counter.misses - counter.warm_misses
        mpki = 1000.0 * misses / instr if instr else 0.0
        points.append(
            MissCurvePoint(
                size=counter.config.size,
                accesses=accesses,
                misses=misses,
                mpki=mpki,
            )
        )
    return points


# -- kernel 2: full LRU stack distances ----------------------------------


def _earlier_greater_counts(values: np.ndarray) -> np.ndarray:
    """For each element, how many earlier elements are greater.

    Vectorized bottom-up mergesort: at every level the left run's
    contribution to each right-run element is found with one global
    ``searchsorted`` over per-pair offset keys, and the merge itself is
    two more ``searchsorted`` rank computations.  ``values`` must be
    non-negative and distinct.
    """
    m = values.size
    counts = np.zeros(m, dtype=np.int64)
    if m < 2:
        return counts
    size = 1 << int(m - 1).bit_length()
    # Per-pair key offset; must exceed the value range (+1 for the -1
    # padding) so concatenated per-pair keys stay globally sorted.
    big = np.int64(int(values.max()) + 2)
    vals = np.full(size, -1, dtype=np.int64)
    vals[:m] = values
    orig = np.arange(size, dtype=np.int64)

    run = 1
    while run < size:
        width = 2 * run
        n_pairs = size // width
        v = vals.reshape(n_pairs, width)
        o = orig.reshape(n_pairs, width)
        offs = np.arange(n_pairs, dtype=np.int64) * big
        left_keys = (v[:, :run] + offs[:, None]).ravel()
        right_keys = (v[:, run:] + offs[:, None]).ravel()
        pair_base = np.repeat(np.arange(n_pairs, dtype=np.int64) * run, run)
        # rank of each right element among its pair's left run
        le_left = np.searchsorted(left_keys, right_keys, side="right") - pair_base
        right_orig = o[:, run:].ravel()
        real = right_orig < m
        counts[right_orig[real]] += run - le_left[real]
        # stable merge via rank arithmetic (no per-pair Python loop)
        lt_right = np.searchsorted(right_keys, left_keys, side="left") - pair_base
        within = np.tile(np.arange(run, dtype=np.int64), n_pairs)
        merged_vals = np.empty(size, dtype=np.int64)
        merged_orig = np.empty(size, dtype=np.int64)
        window_base = np.repeat(np.arange(n_pairs, dtype=np.int64) * width, run)
        left_dest = window_base + within + lt_right
        right_dest = window_base + within + le_left
        merged_vals[left_dest] = v[:, :run].ravel()
        merged_orig[left_dest] = o[:, :run].ravel()
        merged_vals[right_dest] = v[:, run:].ravel()
        merged_orig[right_dest] = o[:, run:].ravel()
        vals, orig = merged_vals, merged_orig
        run = width
    return counts


def stack_distances(blocks) -> np.ndarray:
    """LRU stack distance of every access (-1 for cold first touches).

    Bit-identical to the scalar Fenwick pass in
    :class:`repro.memsys.stackdist.StackDistanceProfiler`: the distance
    is the number of distinct blocks touched since the previous access
    to the same block.  Computed offline: the reuse gap minus the
    number of consecutive-occurrence intervals nested inside it, the
    latter being per-element inversion counts over the gap starts.
    """
    _obs.incr("memsys/fastpath/stack_distances")
    arr = np.asarray(blocks)
    n = arr.size
    dist = np.full(n, -1, dtype=np.int64)
    if n == 0:
        return dist
    prev = _previous_occurrence(arr)
    q = np.flatnonzero(prev >= 0)
    if q.size == 0:
        return dist
    p = prev[q]
    nested = _earlier_greater_counts(p)
    dist[q] = q - p - 1 - nested
    return dist


def stack_distance_histogram(blocks) -> dict[int, int]:
    """``{distance: count}`` with cold accesses keyed by -1."""
    dist = stack_distances(blocks)
    if dist.size == 0:
        return {}
    values, counts = np.unique(dist, return_counts=True)
    return {int(v): int(c) for v, c in zip(values, counts)}
