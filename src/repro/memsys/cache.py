"""Set-associative cache with true-LRU replacement.

The cache operates on *block addresses* (byte address >> block_bits);
callers do the shifting so one cache object never needs to know about
reference encoding.  Each set is a dict from tag to a caller-defined
state value: Python dicts preserve insertion order, so LRU is a delete
+ reinsert, which profiles faster than any list-based scheme at the
trace volumes we replay.

Two interfaces are exposed:

- ``access(block, write)`` — self-contained hit/miss accounting for
  uniprocessor simulations (miss-rate curves, L1 filtering);
- ``probe / touch / set_state / insert / remove`` — the primitive
  operations the MOSI snooping bus composes, where the per-line state
  is a coherence state.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Iterator

from repro.memsys.config import CacheConfig


@dataclass
class CacheStats:
    """Counters kept by ``access``-mode simulations."""

    accesses: int = 0
    misses: int = 0
    writebacks: int = 0
    evictions: int = 0

    @property
    def hits(self) -> int:
        return self.accesses - self.misses

    @property
    def miss_ratio(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

    def merge(self, other: "CacheStats") -> None:
        self.accesses += other.accesses
        self.misses += other.misses
        self.writebacks += other.writebacks
        self.evictions += other.evictions


#: State value used by ``access``-mode (non-coherent) simulations.
CLEAN = 0
DIRTY = 1


class SetAssociativeCache:
    """One physical cache array.

    >>> from repro.memsys.config import CacheConfig
    >>> c = SetAssociativeCache(CacheConfig(size=4096, assoc=2, block=64))
    >>> c.access(0, write=False)   # cold miss
    False
    >>> c.access(0, write=False)   # now a hit
    True
    """

    def __init__(self, config: CacheConfig) -> None:
        self.config = config
        self.stats = CacheStats()
        self._set_mask = config.set_mask
        self._n_sets = config.n_sets
        self._assoc = config.assoc
        self._sets: list[dict[int, Hashable]] = [{} for _ in range(config.n_sets)]

    # -- access-mode interface (uniprocessor / L1 filtering) ------------

    def access(self, block: int, write: bool) -> bool:
        """Simulate one access; returns True on hit.

        Misses insert the block (allocate-on-miss for both reads and
        writes, matching the UltraSPARC II's write-allocate caches) and
        evict the LRU way when the set is full, counting a writeback if
        the victim was dirty.
        """
        line_set = self._sets[block & self._set_mask]
        self.stats.accesses += 1
        state = line_set.get(block)
        if state is not None:
            # Hit: refresh LRU position; a write dirties the line.
            del line_set[block]
            line_set[block] = DIRTY if write else state
            return True
        self.stats.misses += 1
        if len(line_set) >= self._assoc:
            victim, vstate = next(iter(line_set.items()))
            del line_set[victim]
            self.stats.evictions += 1
            if vstate == DIRTY:
                self.stats.writebacks += 1
        line_set[block] = DIRTY if write else CLEAN
        return False

    # -- primitive interface (composed by the coherence bus) ------------

    def probe(self, block: int) -> Hashable | None:
        """Return the line's state without touching LRU, or None."""
        return self._sets[block & self._set_mask].get(block)

    def touch(self, block: int) -> None:
        """Refresh the LRU position of a resident line."""
        line_set = self._sets[block & self._set_mask]
        state = line_set.pop(block)
        line_set[block] = state

    def set_state(self, block: int, state: Hashable) -> None:
        """Change a resident line's state and refresh its LRU position."""
        line_set = self._sets[block & self._set_mask]
        if block not in line_set:
            raise KeyError(f"block {block:#x} not resident")
        del line_set[block]
        line_set[block] = state

    def insert(self, block: int, state: Hashable) -> tuple[int, Hashable] | None:
        """Insert a line, returning the evicted ``(block, state)`` if any."""
        line_set = self._sets[block & self._set_mask]
        victim = None
        if block in line_set:
            del line_set[block]
        elif len(line_set) >= self._assoc:
            vblock, vstate = next(iter(line_set.items()))
            del line_set[vblock]
            victim = (vblock, vstate)
        line_set[block] = state
        return victim

    def remove(self, block: int) -> Hashable | None:
        """Remove a line (invalidation); returns its state or None."""
        return self._sets[block & self._set_mask].pop(block, None)

    # -- introspection ---------------------------------------------------

    def resident_blocks(self) -> Iterator[int]:
        """Iterate over all resident block addresses (test helper)."""
        for line_set in self._sets:
            yield from line_set

    def occupancy(self) -> int:
        """Number of resident lines."""
        return sum(len(s) for s in self._sets)

    def contains(self, block: int) -> bool:
        return block in self._sets[block & self._set_mask]

    def set_of(self, block: int) -> int:
        """Index of the set this block maps to (test helper)."""
        return block & self._set_mask

    def flush(self) -> None:
        """Drop all contents (stats are retained)."""
        for line_set in self._sets:
            line_set.clear()

    def reset_stats(self) -> None:
        self.stats = CacheStats()
