"""MOSI snooping-bus coherence protocol.

This is the reproduction's model of the Sun E6000's snooping coherence
bus.  The observable the paper builds on is the *snoop copyback*: a
processor copying a line back onto the bus in response to another
processor's request, i.e. a miss satisfied by a cache holding the line
dirty (MODIFIED or OWNED).  ``CoherenceStats.c2c_transfers`` counts
exactly those events, and the per-line counts behind Figures 14 and 15
are kept in ``c2c_by_line``.

The protocol is directory-less: the bus mirrors cache contents in a
``holders`` map (block -> set of cache ids) so a snoop is an O(1)
lookup instead of probing every cache.  Caches report their evictions
back through the return value of ``insert``, keeping the mirror exact;
an invariant-checking helper is provided for the test suite.

An MSI variant (``protocol="msi"``) is provided for the protocol
ablation: without the OWNED state, a read snoop hitting a MODIFIED
line downgrades it to SHARED (memory takes ownership), so later misses
by third processors are served by memory rather than by a cache.
A MESI variant (``protocol="mesi"``) adds the EXCLUSIVE state: a read
miss with no other holders installs E, and a later local write
upgrades E->M *silently* — no bus transaction — which pays off on
private read-then-write data like freshly allocated objects.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import IntEnum
from typing import Callable

from repro.errors import ConfigError, SimulationError
from repro.memsys.cache import SetAssociativeCache
from repro.memsys.misses import MissClassifier, MissKind


class State(IntEnum):
    """Coherence line states (INVALID is represented by absence).

    MOSI uses SHARED/OWNED/MODIFIED; the MESI variant uses
    SHARED/EXCLUSIVE/MODIFIED; MSI only SHARED/MODIFIED.
    """

    SHARED = 1
    OWNED = 2
    MODIFIED = 3
    EXCLUSIVE = 4


#: Fill sources returned by ``read``/``write``.
FILL_HIT = "hit"
FILL_C2C = "c2c"
FILL_MEM = "mem"
FILL_UPGRADE = "upgrade"


@dataclass
class CacheSideStats:
    """Per-L2-cache counters."""

    accesses: int = 0
    misses: int = 0
    c2c_fills: int = 0
    mem_fills: int = 0
    upgrades: int = 0
    writebacks: int = 0
    invalidations_received: int = 0
    misses_by_kind: dict[MissKind, int] = field(
        default_factory=lambda: {k: 0 for k in MissKind}
    )

    @property
    def c2c_ratio(self) -> float:
        """Fraction of this cache's misses satisfied by another cache."""
        return self.c2c_fills / self.misses if self.misses else 0.0


@dataclass
class CoherenceStats:
    """Bus-wide counters and per-line communication footprint."""

    bus_reads: int = 0
    bus_read_exclusives: int = 0
    upgrades: int = 0
    silent_upgrades: int = 0  # MESI E->M transitions (no bus traffic)
    c2c_transfers: int = 0
    memory_fetches: int = 0
    writebacks: int = 0
    invalidations: int = 0
    c2c_by_line: dict[int, int] = field(default_factory=dict)
    touched_lines: set[int] = field(default_factory=set)

    @property
    def total_misses(self) -> int:
        return self.bus_reads + self.bus_read_exclusives

    @property
    def c2c_ratio(self) -> float:
        """Fraction of all misses satisfied cache-to-cache (Figure 8)."""
        total = self.total_misses
        return self.c2c_transfers / total if total else 0.0


class MOSIBus:
    """Snooping bus connecting a set of L2 caches.

    Parameters:
        caches: the L2 cache arrays, one per cache id (a cache may be
            shared by several processors; sharing is the caller's
            mapping from processor to cache id).
        protocol: ``"mosi"`` (default) or ``"msi"`` for the ablation.
        track_lines: keep per-line C2C counts and the touched-line set
            (needed for Figures 14/15; a little memory per distinct
            block).
        on_invalidate: optional hook ``(cache_id, block) -> None``
            called when a line is invalidated in a cache, so enclosing
            hierarchies can shoot down L1 copies.
    """

    def __init__(
        self,
        caches: list[SetAssociativeCache],
        protocol: str = "mosi",
        track_lines: bool = True,
        on_invalidate: Callable[[int, int], None] | None = None,
    ) -> None:
        if not caches:
            raise ConfigError("MOSIBus needs at least one cache")
        if protocol not in ("mosi", "msi", "mesi"):
            raise ConfigError(f"unknown protocol {protocol!r}")
        self.caches = caches
        self.protocol = protocol
        self.stats = CoherenceStats()
        self.cache_stats = [CacheSideStats() for _ in caches]
        self.classifiers = [MissClassifier() for _ in caches]
        self._holders: dict[int, set[int]] = {}
        self._mosi = protocol == "mosi"
        self._mesi = protocol == "mesi"
        self._track = track_lines
        self._on_invalidate = on_invalidate

    # -- public operations ----------------------------------------------

    def read(self, cache_id: int, block: int) -> str:
        """A processor behind ``cache_id`` reads ``block``.

        Returns the fill source: ``"hit"``, ``"c2c"`` or ``"mem"``.
        """
        cache = self.caches[cache_id]
        side = self.cache_stats[cache_id]
        side.accesses += 1
        if self._track:
            self.stats.touched_lines.add(block)
        state = cache.probe(block)
        if state is not None:
            cache.touch(block)
            return FILL_HIT
        # Miss: classify, then issue a BusRd.
        side.misses += 1
        side.misses_by_kind[self.classifiers[cache_id].classify(block)] += 1
        self.stats.bus_reads += 1
        source = self._supply(cache_id, block, exclusive=False)
        if source == FILL_C2C:
            side.c2c_fills += 1
        else:
            side.mem_fills += 1
        state = State.SHARED
        if self._mesi and not self._holders.get(block):
            state = State.EXCLUSIVE  # sole copy: silent-upgrade eligible
        self._install(cache_id, block, state)
        return source

    def write(self, cache_id: int, block: int) -> str:
        """A processor behind ``cache_id`` writes ``block``.

        Returns ``"hit"`` (already MODIFIED), ``"upgrade"`` (was
        SHARED/OWNED; others invalidated), ``"c2c"`` or ``"mem"`` (was
        absent; BusRdX issued).
        """
        cache = self.caches[cache_id]
        side = self.cache_stats[cache_id]
        side.accesses += 1
        if self._track:
            self.stats.touched_lines.add(block)
        state = cache.probe(block)
        if state == State.MODIFIED:
            cache.touch(block)
            return FILL_HIT
        if state == State.EXCLUSIVE:
            # MESI: sole clean copy; modify it without any bus traffic.
            self.stats.silent_upgrades += 1
            cache.set_state(block, State.MODIFIED)
            return FILL_HIT
        if state is not None:
            # Upgrade: invalidate every other holder, keep our copy.
            self.stats.upgrades += 1
            side.upgrades += 1
            self._invalidate_others(cache_id, block)
            cache.set_state(block, State.MODIFIED)
            return FILL_UPGRADE
        # Write miss: BusRdX fetches the line exclusively.
        side.misses += 1
        side.misses_by_kind[self.classifiers[cache_id].classify(block)] += 1
        self.stats.bus_read_exclusives += 1
        source = self._supply(cache_id, block, exclusive=True)
        if source == FILL_C2C:
            side.c2c_fills += 1
        else:
            side.mem_fills += 1
        self._invalidate_others(cache_id, block)
        self._install(cache_id, block, State.MODIFIED)
        return source

    # -- protocol internals ----------------------------------------------

    def _supply(self, requester: int, block: int, exclusive: bool) -> str:
        """Find the data source for a miss and apply snoop side effects."""
        holders = self._holders.get(block)
        if holders:
            for holder_id in holders:
                holder = self.caches[holder_id]
                state = holder.probe(block)
                if state == State.EXCLUSIVE and not exclusive:
                    # Clean sole copy: drop to SHARED, memory supplies.
                    holder.set_state(block, State.SHARED)
                    continue
                if state in (State.MODIFIED, State.OWNED):
                    # Snoop copyback: the dirty holder supplies the line.
                    self.stats.c2c_transfers += 1
                    if self._track:
                        count = self.stats.c2c_by_line.get(block, 0)
                        self.stats.c2c_by_line[block] = count + 1
                    if not exclusive:
                        if self._mosi:
                            holder.set_state(block, State.OWNED)
                        else:
                            # MSI: memory takes ownership; the copyback
                            # doubles as a writeback, credited to the
                            # supplying holder like any other writeback.
                            holder.set_state(block, State.SHARED)
                            self.stats.writebacks += 1
                            self.cache_stats[holder_id].writebacks += 1
                    return FILL_C2C
            # Only clean sharers: memory supplies the data.
        self.stats.memory_fetches += 1
        return FILL_MEM

    def _invalidate_others(self, requester: int, block: int) -> None:
        """Invalidate every copy of ``block`` outside ``requester``."""
        holders = self._holders.get(block)
        if not holders:
            return
        for holder_id in list(holders):
            if holder_id == requester:
                continue
            self.caches[holder_id].remove(block)
            holders.discard(holder_id)
            self.classifiers[holder_id].note_coherence_invalidation(block)
            self.cache_stats[holder_id].invalidations_received += 1
            self.stats.invalidations += 1
            if self._on_invalidate is not None:
                self._on_invalidate(holder_id, block)
        if not holders:
            del self._holders[block]

    def _install(self, cache_id: int, block: int, state: State) -> None:
        """Insert the filled line, processing any eviction.

        Evictions propagate through ``on_invalidate`` just like
        coherence invalidations: an inclusive L2 must shoot down the
        L1 copies above an evicted line, otherwise a stale L1 line
        keeps serving hits after the L2 — and the bus's ``holders``
        mirror — have forgotten the block entirely (and a later writer
        elsewhere would never invalidate it).
        """
        victim = self.caches[cache_id].insert(block, state)
        self.classifiers[cache_id].note_insert(block)
        self._holders.setdefault(block, set()).add(cache_id)
        if victim is None:
            return
        vblock, vstate = victim
        self.classifiers[cache_id].note_eviction(vblock)
        vholders = self._holders.get(vblock)
        if vholders is not None:
            vholders.discard(cache_id)
            if not vholders:
                del self._holders[vblock]
        if vstate in (State.MODIFIED, State.OWNED):
            self.stats.writebacks += 1
            self.cache_stats[cache_id].writebacks += 1
        if self._on_invalidate is not None:
            self._on_invalidate(cache_id, vblock)

    def reset_stats(self) -> None:
        """Zero all counters, keeping cache contents and history.

        Used to discard a warmup window: the caches stay warm and the
        miss classifiers keep their history, but the reported counts
        cover only the measurement interval — the paper's steady-state
        reporting (Section 2.1).
        """
        self.stats = CoherenceStats()
        self.cache_stats = [CacheSideStats() for _ in self.caches]

    # -- invariants (test + checker support) -------------------------------

    def holder_ids(self, block: int) -> frozenset[int]:
        """Cache ids the bus mirror believes hold ``block``."""
        return frozenset(self._holders.get(block, ()))

    def mirrored_blocks(self) -> frozenset[int]:
        """Every block the bus mirror believes is resident somewhere."""
        return frozenset(self._holders)

    def check_invariants(self) -> None:
        """Verify protocol invariants; raises SimulationError on violation.

        - single-writer: at most one MODIFIED copy, and if one exists it
          is the only copy;
        - single-owner: at most one OWNED copy per line;
        - mirror consistency: ``holders`` matches actual cache contents.
        """
        seen: dict[int, list[tuple[int, State]]] = {}
        for cid, cache in enumerate(self.caches):
            for block in cache.resident_blocks():
                seen.setdefault(block, []).append((cid, cache.probe(block)))
        for block, copies in seen.items():
            states = [s for _, s in copies]
            if states.count(State.MODIFIED) > 1:
                raise SimulationError(f"block {block:#x}: multiple MODIFIED copies")
            if State.MODIFIED in states and len(copies) > 1:
                raise SimulationError(f"block {block:#x}: MODIFIED is not exclusive")
            if State.EXCLUSIVE in states and len(copies) > 1:
                raise SimulationError(f"block {block:#x}: EXCLUSIVE is not exclusive")
            if states.count(State.OWNED) > 1:
                raise SimulationError(f"block {block:#x}: multiple OWNED copies")
            mirror = self._holders.get(block, set())
            actual = {cid for cid, _ in copies}
            if mirror != actual:
                raise SimulationError(
                    f"block {block:#x}: holders mirror {mirror} != actual {actual}"
                )
        for block, holders in self._holders.items():
            for cid in holders:
                if not self.caches[cid].contains(block):
                    raise SimulationError(
                        f"block {block:#x}: mirror says cache {cid} holds it"
                    )
