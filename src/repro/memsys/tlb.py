"""TLB model: page size vs. reach.

Section 3.2 and the related-work discussion report that enabling
Solaris Intimate Shared Memory (ISM) — raising the page size from
8 KB to 4 MB — improved ECperf throughput by more than 10%, because
the application server's large heap otherwise far exceeds TLB reach.
This module models a fully-associative LRU TLB so that effect can be
demonstrated quantitatively (see ``examples/quickstart.py`` and the
ISM ablation bench).
"""

from __future__ import annotations

from repro.errors import ConfigError
from repro.units import log2_int


class Tlb:
    """Fully-associative LRU TLB.

    The UltraSPARC II's data TLB has 64 entries.  With 8 KB pages that
    is a 512 KB reach; with 4 MB ISM pages it is 256 MB — enough to
    cover the benchmarks' entire heaps.
    """

    def __init__(self, entries: int = 64, page_size: int = 8 * 1024) -> None:
        if entries <= 0:
            raise ConfigError("TLB must have a positive number of entries")
        self.entries = entries
        self.page_size = page_size
        self.page_bits = log2_int(page_size)
        self.accesses = 0
        self.misses = 0
        self._pages: dict[int, None] = {}

    @property
    def reach(self) -> int:
        """Bytes of address space the TLB can map simultaneously."""
        return self.entries * self.page_size

    def access(self, addr: int) -> bool:
        """Translate one byte address; returns True on TLB hit."""
        page = addr >> self.page_bits
        self.accesses += 1
        pages = self._pages
        if page in pages:
            del pages[page]
            pages[page] = None
            return True
        self.misses += 1
        if len(pages) >= self.entries:
            del pages[next(iter(pages))]
        pages[page] = None
        return False

    @property
    def miss_ratio(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

    def mpki(self, instructions: int) -> float:
        """TLB misses per 1000 instructions."""
        return 1000.0 * self.misses / instructions if instructions else 0.0

    def reset_stats(self) -> None:
        self.accesses = 0
        self.misses = 0
