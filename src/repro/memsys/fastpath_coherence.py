"""Batched coherent replay: the MOSI hierarchy path as a compiled kernel.

:func:`repro.memsys.fastpath.lru_miss_mask` vectorized the
single-cache sweeps, but the paper's headline figures (4-11, 14-16)
replay *multiprocessor* traces through the full
:class:`~repro.memsys.hierarchy.MemoryHierarchy` — split L1s, a MOSI
snooping bus, inclusion shoot-downs, miss classification — one
reference at a time in Python.  That path cannot be expressed as a
closed-form numpy recurrence: measurement on the bench workloads shows
conflict-free epochs between cross-CPU *written-shared* touches are
only ~40-200 references long (the round-robin quantum alone bounds
greedy epochs at 64), so epoch partitioning never amortizes the numpy
per-batch overhead and the issue's alternative branch applies: a
**state-vector step machine**, compiled from embedded C at first use
with the system C compiler and loaded through :mod:`ctypes`.

The kernel is a transliteration of the scalar machine, bit-identical
by construction and by test:

- per-set recency-ordered arrays replicate the dict-ordered LRU of
  :class:`~repro.memsys.cache.SetAssociativeCache` (insertion order =
  recency; index 0 = LRU);
- one open-addressing hash table keyed by L2 block carries everything
  the bus keys by line: the ``holders`` mirror (bitmask), the miss
  classifier's ever-held/invalidated sets (bitmasks per cache), the
  per-line C2C counts and the touched-line set;
- the round-robin quantum interleave and the warmup-discard split run
  inside the kernel session, exactly as ``run_trace`` schedules them.

After a replay the full machine state — cache contents in LRU order,
coherence states, holders mirror, classifier history, every counter —
is exported back into the Python objects, so a kernel-replayed
hierarchy is indistinguishable from a scalar-replayed one (the parity
suites in ``tests/memsys/test_fastpath_coherence.py`` compare the
complete state, and ``jmmw diffcheck`` diffs both paths against the
naive oracle machine).

Fallback conditions (the scalar path is always the reference):

- ``JMMW_FASTPATH=0`` / ``jmmw --no-fastpath`` / ``run_trace(...,
  fastpath=False)`` — the established escape hatches;
- no C compiler on the machine (``cc``/``gcc``/``clang``) or the
  one-time build fails: :func:`kernel_available` returns False and
  every replay silently uses the scalar loop;
- runtime invariant checking is active (``JMMW_CHECK=1``): the
  checker observes every reference, which only the scalar loop can
  feed;
- the hierarchy is not cold (a previous replay or manual accesses
  left state behind): the kernel replays whole traces from empty
  caches only;
- more than 64 L2 caches (the holders bitmask width).

The compiled ``.so`` is cached under ``$XDG_CACHE_HOME/jmmw`` (or
``~/.cache/jmmw``) keyed by a hash of the embedded source, so the
build cost is paid once per machine, not per process.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile
from itertools import islice
from pathlib import Path

import numpy as np

from repro import obs as _obs
from repro.memsys.block import INSTRUCTIONS_PER_IFETCH
from repro.memsys.coherence import CacheSideStats, CoherenceStats, State
from repro.memsys.misses import MissKind

#: Field order of the flat per-processor stats array, matching
#: :class:`repro.memsys.hierarchy.ProcessorStats` declaration order.
PROC_FIELDS = (
    "instructions", "ifetches", "loads", "stores",
    "l1i_accesses", "l1i_misses", "l1d_accesses", "l1d_misses",
    "l2_hits", "l2_misses", "l2_data_misses", "l2_instr_misses",
    "l2_load_hits", "l2_load_misses",
    "c2c_fills", "c2c_load_fills", "mem_fills", "mem_load_fills",
    "upgrades",
)

#: Bus counter order, matching :class:`CoherenceStats` scalar fields.
BUS_FIELDS = (
    "bus_reads", "bus_read_exclusives", "upgrades", "silent_upgrades",
    "c2c_transfers", "memory_fetches", "writebacks", "invalidations",
)

#: Per-L2 side counters followed by the three miss-kind buckets.
SIDE_FIELDS = (
    "accesses", "misses", "c2c_fills", "mem_fills", "upgrades",
    "writebacks", "invalidations_received",
)
_MISS_KINDS = (MissKind.COLD, MissKind.COHERENCE, MissKind.REPLACEMENT)
_N_SIDE = len(SIDE_FIELDS) + len(_MISS_KINDS)

_PROTOCOL_IDS = {"mosi": 0, "msi": 1, "mesi": 2}

#: Seeded-defect switch for the parity-gate tests: 0 = off,
#: 1 = drop the supplying holder's writeback credit on MSI copybacks
#: (re-introduces the pre-fix accounting bug), 2 = skip the LRU
#: refresh on L2 read hits (corrupts replacement decisions).
_defect = 0


def set_kernel_defect(defect: int) -> None:
    """Inject a deliberate kernel defect (tests only; 0 disables)."""
    global _defect
    _defect = int(defect)


_C_SOURCE = r"""
#include <stdint.h>
#include <stdlib.h>
#include <string.h>

/* Coherence states; values match repro.memsys.coherence.State. */
#define ST_S 1
#define ST_O 2
#define ST_M 3
#define ST_E 4

/* Fill sources (returned by bus_read/bus_write). */
#define SRC_HIT 0
#define SRC_UPG 1
#define SRC_C2C 2
#define SRC_MEM 3

/* Per-processor stat slots (PROC_FIELDS order). */
enum {
    P_INSTR, P_IFETCH, P_LOADS, P_STORES,
    P_L1I_ACC, P_L1I_MISS, P_L1D_ACC, P_L1D_MISS,
    P_L2_HITS, P_L2_MISSES, P_L2_DMISS, P_L2_IMISS,
    P_L2_LHITS, P_L2_LMISS,
    P_C2C, P_C2C_L, P_MEM, P_MEM_L, P_UPG,
    N_PROC
};

/* Bus stat slots (BUS_FIELDS order). */
enum {
    B_READS, B_READX, B_UPG, B_SILENT, B_C2C, B_MEMF, B_WB, B_INVAL,
    N_BUS
};

/* Per-L2 side stat slots (SIDE_FIELDS order + miss kinds). */
enum {
    S_ACC, S_MISS, S_C2C, S_MEM, S_UPG, S_WB, S_INVR,
    S_K_COLD, S_K_COH, S_K_REPL,
    N_SIDE
};

/* L1 internal CacheStats slots per cache (accesses, misses, evictions). */
enum { L_ACC, L_MISS, L_EVICT, N_L1 };

/* One cache array: per-set recency-ordered entries, index 0 = LRU.  */
typedef struct {
    uint64_t *blocks;   /* n_sets * assoc */
    int32_t  *states;   /* n_sets * assoc, NULL for stateless L1s */
    int32_t  *count;    /* n_sets */
    uint64_t  set_mask; /* n_sets - 1 (power of two) */
    int64_t   assoc;
    int64_t   n_sets;
} Cache;

/* Block-keyed bus table: holders mirror + classifier history +
 * per-line footprint, one open-addressing lookup per event.  Keys are
 * block+1 so 0 marks an empty slot. */
typedef struct {
    uint64_t key;
    uint64_t holders;   /* bit per L2 cache id */
    uint64_t ever;      /* classifier ever_held, bit per cache id */
    uint64_t inval;     /* classifier invalidated, bit per cache id */
    int64_t  c2c;       /* c2c_by_line count */
    uint8_t  touched;   /* member of touched_lines */
} Entry;

typedef struct {
    Entry  *e;
    int64_t cap;        /* power of two */
    int64_t used;
} Table;

typedef struct {
    int64_t  n_procs, n_l2;
    int32_t  protocol;      /* 0 mosi, 1 msi, 2 mesi */
    int32_t  include_l1, track_lines, defect;
    int64_t  l1i_bits, l1d_bits, l2_bits;
    int64_t  instr_per_ifetch;
    int32_t *l2_of_cpu;     /* n_procs */
    Cache   *l1i, *l1d;     /* n_procs each */
    Cache   *l2;            /* n_l2 */
    Table    tbl;
    int64_t *proc;          /* n_procs * N_PROC */
    int64_t *side;          /* n_l2 * N_SIDE */
    int64_t *bus;           /* N_BUS */
    int64_t *l1s;           /* n_procs * 2 * N_L1 (i then d) */
    int32_t  oom;
} Machine;

static uint64_t mix64(uint64_t k) {
    k ^= k >> 33; k *= 0xff51afd7ed558ccdULL;
    k ^= k >> 33; k *= 0xc4ceb9fe1a85ec53ULL;
    k ^= k >> 33;
    return k;
}

static int tbl_init(Table *t, int64_t cap) {
    t->cap = cap; t->used = 0;
    t->e = calloc((size_t)cap, sizeof(Entry));
    return t->e != NULL;
}

static int tbl_grow(Table *t) {
    int64_t ncap = t->cap * 2;
    Entry *ne = calloc((size_t)ncap, sizeof(Entry));
    if (!ne) return 0;
    for (int64_t i = 0; i < t->cap; i++) {
        if (!t->e[i].key) continue;
        uint64_t h = mix64(t->e[i].key) & (uint64_t)(ncap - 1);
        while (ne[h].key) h = (h + 1) & (uint64_t)(ncap - 1);
        ne[h] = t->e[i];
    }
    free(t->e);
    t->e = ne; t->cap = ncap;
    return 1;
}

/* Find the entry for block, creating it zeroed if absent.  Any call
 * may grow the table: never hold an Entry* across another tbl_get. */
static Entry *tbl_get(Machine *m, uint64_t block) {
    Table *t = &m->tbl;
    if ((t->used + 1) * 10 >= t->cap * 7 && !tbl_grow(t)) {
        m->oom = 1;
        return &t->e[0];  /* poisoned; run() aborts on oom */
    }
    uint64_t key = block + 1;
    uint64_t h = mix64(key) & (uint64_t)(t->cap - 1);
    while (t->e[h].key && t->e[h].key != key)
        h = (h + 1) & (uint64_t)(t->cap - 1);
    if (!t->e[h].key) { t->e[h].key = key; t->used++; }
    return &t->e[h];
}

static Entry *tbl_find(Table *t, uint64_t block) {
    uint64_t key = block + 1;
    uint64_t h = mix64(key) & (uint64_t)(t->cap - 1);
    while (t->e[h].key) {
        if (t->e[h].key == key) return &t->e[h];
        h = (h + 1) & (uint64_t)(t->cap - 1);
    }
    return NULL;
}

static int cache_init(Cache *c, int64_t n_sets, int64_t assoc, int with_state) {
    c->n_sets = n_sets; c->assoc = assoc;
    c->set_mask = (uint64_t)(n_sets - 1);
    c->blocks = malloc((size_t)(n_sets * assoc) * sizeof(uint64_t));
    c->states = with_state
        ? malloc((size_t)(n_sets * assoc) * sizeof(int32_t)) : NULL;
    c->count = calloc((size_t)n_sets, sizeof(int32_t));
    return c->blocks && c->count && (!with_state || c->states);
}

static void cache_destroy(Cache *c) {
    free(c->blocks); free(c->states); free(c->count);
}

/* Index of block within its set's live entries, or -1. */
static int64_t cache_find(const Cache *c, uint64_t block) {
    int64_t s = (int64_t)(block & c->set_mask);
    int64_t base = s * c->assoc, n = c->count[s];
    for (int64_t i = 0; i < n; i++)
        if (c->blocks[base + i] == block) return base + i;
    return -1;
}

/* Move the entry at idx to the MRU end of its set, storing state. */
static void cache_to_mru(Cache *c, int64_t idx, int32_t state) {
    int64_t s = (int64_t)(c->blocks[idx] & c->set_mask);
    int64_t base = s * c->assoc, last = base + c->count[s] - 1;
    uint64_t b = c->blocks[idx];
    for (int64_t i = idx; i < last; i++) {
        c->blocks[i] = c->blocks[i + 1];
        if (c->states) c->states[i] = c->states[i + 1];
    }
    c->blocks[last] = b;
    if (c->states) c->states[last] = state;
}

/* Insert MRU; returns 1 and fills victim when an eviction happened. */
static int cache_insert(Cache *c, uint64_t block, int32_t state,
                        uint64_t *vblock, int32_t *vstate) {
    int64_t s = (int64_t)(block & c->set_mask);
    int64_t base = s * c->assoc, n = c->count[s];
    int64_t idx = cache_find(c, block);
    if (idx >= 0) { cache_to_mru(c, idx, state); return 0; }
    int victim = 0;
    if (n >= c->assoc) {
        *vblock = c->blocks[base];
        *vstate = c->states ? c->states[base] : 0;
        victim = 1;
        for (int64_t i = base; i < base + n - 1; i++) {
            c->blocks[i] = c->blocks[i + 1];
            if (c->states) c->states[i] = c->states[i + 1];
        }
        n--;
    }
    c->blocks[base + n] = block;
    if (c->states) c->states[base + n] = state;
    c->count[s] = (int32_t)(n + 1);
    return victim;
}

static int cache_remove(Cache *c, uint64_t block) {
    int64_t idx = cache_find(c, block);
    if (idx < 0) return 0;
    int64_t s = (int64_t)(block & c->set_mask);
    int64_t base = s * c->assoc, last = base + c->count[s] - 1;
    for (int64_t i = idx; i < last; i++) {
        c->blocks[i] = c->blocks[i + 1];
        if (c->states) c->states[i] = c->states[i + 1];
    }
    c->count[s]--;
    return 1;
}

/* L1 access-mode (SetAssociativeCache.access, write=False). */
static int l1_access(Cache *c, uint64_t block, int64_t *ls) {
    ls[L_ACC]++;
    int64_t idx = cache_find(c, block);
    if (idx >= 0) { cache_to_mru(c, idx, 0); return 1; }
    ls[L_MISS]++;
    uint64_t vb; int32_t vs;
    if (cache_insert(c, block, 0, &vb, &vs)) ls[L_EVICT]++;
    return 0;
}

static void shoot_down_l1(Machine *m, int64_t cid, uint64_t block) {
    if (!m->include_l1) return;
    uint64_t base_addr = block << m->l2_bits;
    int64_t ri = (int64_t)1 << (m->l2_bits - m->l1i_bits);
    int64_t rd = (int64_t)1 << (m->l2_bits - m->l1d_bits);
    for (int64_t cpu = 0; cpu < m->n_procs; cpu++) {
        if (m->l2_of_cpu[cpu] != cid) continue;
        uint64_t fi = base_addr >> m->l1i_bits;
        for (int64_t sub = 0; sub < ri; sub++)
            cache_remove(&m->l1i[cpu], fi + (uint64_t)sub);
        uint64_t fd = base_addr >> m->l1d_bits;
        for (int64_t sub = 0; sub < rd; sub++)
            cache_remove(&m->l1d[cpu], fd + (uint64_t)sub);
    }
}

/* MOSIBus._supply: find the data source, apply snoop side effects. */
static int bus_supply(Machine *m, uint64_t block, int exclusive) {
    Entry *e = tbl_find(&m->tbl, block);
    uint64_t holders = e ? e->holders : 0;
    for (int64_t hid = 0; holders >> hid; hid++) {
        if (!((holders >> hid) & 1)) continue;
        Cache *hc = &m->l2[hid];
        int64_t idx = cache_find(hc, block);
        if (idx < 0) continue;  /* mirror is exact; defensive only */
        int32_t st = hc->states[idx];
        if (st == ST_E && !exclusive) {
            /* Clean sole copy: drop to SHARED, memory supplies. */
            cache_to_mru(hc, idx, ST_S);
            continue;
        }
        if (st == ST_M || st == ST_O) {
            /* Snoop copyback: the dirty holder supplies the line. */
            m->bus[B_C2C]++;
            if (m->track_lines) e->c2c++;
            if (!exclusive) {
                if (m->protocol == 0) {
                    cache_to_mru(hc, idx, ST_O);
                } else {
                    /* MSI: memory takes ownership; the copyback
                     * doubles as a writeback, credited to the
                     * supplying holder. */
                    cache_to_mru(hc, idx, ST_S);
                    m->bus[B_WB]++;
                    if (m->defect != 1)
                        m->side[hid * N_SIDE + S_WB]++;
                }
            }
            return SRC_C2C;
        }
    }
    m->bus[B_MEMF]++;
    return SRC_MEM;
}

static void bus_invalidate_others(Machine *m, int64_t req, uint64_t block) {
    Entry *e = tbl_find(&m->tbl, block);
    if (!e || !e->holders) return;
    for (int64_t hid = 0; e->holders >> hid; hid++) {
        if (!((e->holders >> hid) & 1) || hid == req) continue;
        cache_remove(&m->l2[hid], block);
        e->holders &= ~((uint64_t)1 << hid);
        e->inval |= (uint64_t)1 << hid;   /* classifier: coherence */
        m->side[hid * N_SIDE + S_INVR]++;
        m->bus[B_INVAL]++;
        shoot_down_l1(m, hid, block);
    }
}

static void bus_install(Machine *m, int64_t cid, uint64_t block, int32_t st) {
    uint64_t vb; int32_t vs;
    int victim = cache_insert(&m->l2[cid], block, st, &vb, &vs);
    Entry *e = tbl_get(m, block);
    e->ever |= (uint64_t)1 << cid;        /* classifier note_insert */
    e->inval &= ~((uint64_t)1 << cid);
    e->holders |= (uint64_t)1 << cid;
    if (!victim) return;
    Entry *ve = tbl_get(m, vb);           /* may grow; e is dead now */
    ve->inval &= ~((uint64_t)1 << cid);   /* classifier note_eviction */
    ve->holders &= ~((uint64_t)1 << cid);
    if (vs == ST_M || vs == ST_O) {
        m->bus[B_WB]++;
        m->side[cid * N_SIDE + S_WB]++;
    }
    shoot_down_l1(m, cid, vb);
}

static void classify_miss(Machine *m, int64_t cid, uint64_t block) {
    Entry *e = tbl_get(m, block);
    int slot = !((e->ever >> cid) & 1) ? S_K_COLD
             : ((e->inval >> cid) & 1) ? S_K_COH : S_K_REPL;
    m->side[cid * N_SIDE + slot]++;
}

static int bus_read(Machine *m, int64_t cid, uint64_t block) {
    int64_t *side = m->side + cid * N_SIDE;
    side[S_ACC]++;
    if (m->track_lines) tbl_get(m, block)->touched = 1;
    Cache *c = &m->l2[cid];
    int64_t idx = cache_find(c, block);
    if (idx >= 0) {
        if (m->defect != 2) cache_to_mru(c, idx, c->states[idx]);
        return SRC_HIT;
    }
    side[S_MISS]++;
    classify_miss(m, cid, block);
    m->bus[B_READS]++;
    int src = bus_supply(m, block, 0);
    side[src == SRC_C2C ? S_C2C : S_MEM]++;
    int32_t st = ST_S;
    if (m->protocol == 2) {
        Entry *e = tbl_find(&m->tbl, block);
        if (!e || !e->holders) st = ST_E;  /* sole copy */
    }
    bus_install(m, cid, block, st);
    return src;
}

static int bus_write(Machine *m, int64_t cid, uint64_t block) {
    int64_t *side = m->side + cid * N_SIDE;
    side[S_ACC]++;
    if (m->track_lines) tbl_get(m, block)->touched = 1;
    Cache *c = &m->l2[cid];
    int64_t idx = cache_find(c, block);
    int32_t st = idx >= 0 ? c->states[idx] : 0;
    if (idx >= 0 && st == ST_M) {
        cache_to_mru(c, idx, st);
        return SRC_HIT;
    }
    if (idx >= 0 && st == ST_E) {
        /* MESI: sole clean copy; modify without bus traffic. */
        m->bus[B_SILENT]++;
        cache_to_mru(c, idx, ST_M);
        return SRC_HIT;
    }
    if (idx >= 0) {
        /* Upgrade: invalidate other holders, keep our copy. */
        m->bus[B_UPG]++;
        side[S_UPG]++;
        bus_invalidate_others(m, cid, block);
        idx = cache_find(c, block);  /* unchanged, but stay exact */
        cache_to_mru(c, idx, ST_M);
        return SRC_UPG;
    }
    side[S_MISS]++;
    classify_miss(m, cid, block);
    m->bus[B_READX]++;
    int src = bus_supply(m, block, 1);
    side[src == SRC_C2C ? S_C2C : S_MEM]++;
    bus_invalidate_others(m, cid, block);
    bus_install(m, cid, block, ST_M);
    return src;
}

/* MemoryHierarchy.access + _l2_access for one encoded reference. */
static void step(Machine *m, int64_t cpu, uint64_t ref) {
    int kind = (int)(ref & 3);
    uint64_t addr = ref >> 2;
    int64_t *ps = m->proc + cpu * N_PROC;
    int write = 0, instr = 0;
    if (kind == 0) {            /* ifetch */
        ps[P_IFETCH]++;
        ps[P_INSTR] += m->instr_per_ifetch;
        if (m->include_l1) {
            ps[P_L1I_ACC]++;
            if (l1_access(&m->l1i[cpu], addr >> m->l1i_bits,
                          m->l1s + cpu * 2 * N_L1))
                return;
            ps[P_L1I_MISS]++;
        }
        instr = 1;
    } else if (kind == 2) {     /* store: write-through no-allocate L1D */
        ps[P_STORES]++;
        if (m->include_l1) {
            Cache *l1d = &m->l1d[cpu];
            int64_t idx = cache_find(l1d, addr >> m->l1d_bits);
            if (idx >= 0) cache_to_mru(l1d, idx, 0);
        }
        write = 1;
    } else {                    /* load */
        ps[P_LOADS]++;
        if (m->include_l1) {
            ps[P_L1D_ACC]++;
            if (l1_access(&m->l1d[cpu], addr >> m->l1d_bits,
                          m->l1s + (cpu * 2 + 1) * N_L1))
                return;
            ps[P_L1D_MISS]++;
        }
    }
    uint64_t block = addr >> m->l2_bits;
    int64_t cid = m->l2_of_cpu[cpu];
    int src = write ? bus_write(m, cid, block) : bus_read(m, cid, block);
    int load = !write && !instr;
    if (src == SRC_HIT) {
        ps[P_L2_HITS]++;
        if (load) ps[P_L2_LHITS]++;
    } else if (src == SRC_UPG) {
        ps[P_UPG]++;
    } else if (src == SRC_C2C) {
        ps[P_L2_MISSES]++; ps[P_C2C]++;
        if (load) ps[P_C2C_L]++;
    } else {
        ps[P_L2_MISSES]++; ps[P_MEM]++;
        if (load) ps[P_MEM_L]++;
    }
    if (src == SRC_C2C || src == SRC_MEM) {
        if (instr) ps[P_L2_IMISS]++;
        else {
            ps[P_L2_DMISS]++;
            if (load) ps[P_L2_LMISS]++;
        }
    }
}

Machine *jmmw_new(int64_t n_procs, int64_t n_l2, const int32_t *l2_of_cpu,
                  int32_t protocol, int32_t include_l1, int32_t track_lines,
                  int64_t l1i_sets, int64_t l1i_assoc, int64_t l1i_bits,
                  int64_t l1d_sets, int64_t l1d_assoc, int64_t l1d_bits,
                  int64_t l2_sets, int64_t l2_assoc, int64_t l2_bits,
                  int64_t instr_per_ifetch, int32_t defect) {
    Machine *m = calloc(1, sizeof(Machine));
    if (!m) return NULL;
    m->n_procs = n_procs; m->n_l2 = n_l2;
    m->protocol = protocol; m->include_l1 = include_l1;
    m->track_lines = track_lines; m->defect = defect;
    m->l1i_bits = l1i_bits; m->l1d_bits = l1d_bits; m->l2_bits = l2_bits;
    m->instr_per_ifetch = instr_per_ifetch;
    m->l2_of_cpu = malloc((size_t)n_procs * sizeof(int32_t));
    m->l1i = calloc((size_t)n_procs, sizeof(Cache));
    m->l1d = calloc((size_t)n_procs, sizeof(Cache));
    m->l2 = calloc((size_t)n_l2, sizeof(Cache));
    m->proc = calloc((size_t)(n_procs * N_PROC), sizeof(int64_t));
    m->side = calloc((size_t)(n_l2 * N_SIDE), sizeof(int64_t));
    m->bus = calloc(N_BUS, sizeof(int64_t));
    m->l1s = calloc((size_t)(n_procs * 2 * N_L1), sizeof(int64_t));
    int ok = m->l2_of_cpu && m->l1i && m->l1d && m->l2
          && m->proc && m->side && m->bus && m->l1s;
    if (ok) {
        memcpy(m->l2_of_cpu, l2_of_cpu, (size_t)n_procs * sizeof(int32_t));
        for (int64_t i = 0; ok && i < n_procs; i++) {
            ok = cache_init(&m->l1i[i], l1i_sets, l1i_assoc, 0)
              && cache_init(&m->l1d[i], l1d_sets, l1d_assoc, 0);
        }
        for (int64_t i = 0; ok && i < n_l2; i++)
            ok = cache_init(&m->l2[i], l2_sets, l2_assoc, 1);
        if (ok) ok = tbl_init(&m->tbl, 1 << 16);
    }
    if (!ok) { m->oom = 1; }
    return m;
}

void jmmw_free(Machine *m) {
    if (!m) return;
    for (int64_t i = 0; i < m->n_procs; i++) {
        if (m->l1i) cache_destroy(&m->l1i[i]);
        if (m->l1d) cache_destroy(&m->l1d[i]);
    }
    for (int64_t i = 0; i < m->n_l2; i++)
        if (m->l2) cache_destroy(&m->l2[i]);
    free(m->l1i); free(m->l1d); free(m->l2);
    free(m->l2_of_cpu); free(m->tbl.e);
    free(m->proc); free(m->side); free(m->bus); free(m->l1s);
    free(m);
}

/* Round-robin quantum replay over per-CPU slices of one flat array. */
int jmmw_run(Machine *m, const uint64_t *refs, const int64_t *offs,
             const int64_t *lens, int64_t quantum) {
    if (m->oom) return 1;
    int64_t *pos = calloc((size_t)m->n_procs, sizeof(int64_t));
    if (!pos) return 1;
    int live = 1;
    while (live) {
        live = 0;
        for (int64_t cpu = 0; cpu < m->n_procs; cpu++) {
            int64_t len = lens[cpu], p = pos[cpu];
            if (p >= len) continue;
            int64_t end = p + quantum < len ? p + quantum : len;
            const uint64_t *base = refs + offs[cpu];
            for (int64_t i = p; i < end; i++) step(m, cpu, base[i]);
            pos[cpu] = end;
            if (end < len) live = 1;
            if (m->oom) { free(pos); return 1; }
        }
    }
    free(pos);
    return m->oom;
}

/* Zero the reported counters (warmup discard); caches, classifier
 * history and L1-internal CacheStats stay, like
 * MemoryHierarchy.reset_stats + MOSIBus.reset_stats. */
void jmmw_reset_stats(Machine *m) {
    memset(m->proc, 0, (size_t)(m->n_procs * N_PROC) * sizeof(int64_t));
    memset(m->side, 0, (size_t)(m->n_l2 * N_SIDE) * sizeof(int64_t));
    memset(m->bus, 0, N_BUS * sizeof(int64_t));
    for (int64_t i = 0; i < m->tbl.cap; i++) {
        if (!m->tbl.e[i].key) continue;
        m->tbl.e[i].c2c = 0;
        m->tbl.e[i].touched = 0;
    }
}

void jmmw_get_stats(Machine *m, int64_t *proc, int64_t *side,
                    int64_t *bus, int64_t *l1s) {
    if (proc) memcpy(proc, m->proc,
                     (size_t)(m->n_procs * N_PROC) * sizeof(int64_t));
    if (side) memcpy(side, m->side,
                     (size_t)(m->n_l2 * N_SIDE) * sizeof(int64_t));
    if (bus) memcpy(bus, m->bus, N_BUS * sizeof(int64_t));
    if (l1s) memcpy(l1s, m->l1s,
                    (size_t)(m->n_procs * 2 * N_L1) * sizeof(int64_t));
}

int64_t jmmw_table_used(Machine *m) { return m->tbl.used; }

void jmmw_export_table(Machine *m, uint64_t *keys, uint64_t *holders,
                       uint64_t *ever, uint64_t *inval, int64_t *c2c,
                       uint8_t *touched) {
    int64_t j = 0;
    for (int64_t i = 0; i < m->tbl.cap; i++) {
        Entry *e = &m->tbl.e[i];
        if (!e->key) continue;
        keys[j] = e->key - 1;
        holders[j] = e->holders;
        ever[j] = e->ever;
        inval[j] = e->inval;
        c2c[j] = e->c2c;
        touched[j] = e->touched;
        j++;
    }
}

static Cache *pick_cache(Machine *m, int32_t which, int64_t idx) {
    if (which == 0) return &m->l1i[idx];
    if (which == 1) return &m->l1d[idx];
    return &m->l2[idx];
}

int64_t jmmw_cache_entries(Machine *m, int32_t which, int64_t idx) {
    Cache *c = pick_cache(m, which, idx);
    int64_t total = 0;
    for (int64_t s = 0; s < c->n_sets; s++) total += c->count[s];
    return total;
}

/* Entries in set order, LRU -> MRU within each set. */
void jmmw_export_cache(Machine *m, int32_t which, int64_t idx,
                       int32_t *set_counts, uint64_t *blocks,
                       int32_t *states) {
    Cache *c = pick_cache(m, which, idx);
    int64_t j = 0;
    for (int64_t s = 0; s < c->n_sets; s++) {
        int64_t base = s * c->assoc, n = c->count[s];
        set_counts[s] = (int32_t)n;
        for (int64_t i = 0; i < n; i++) {
            blocks[j] = c->blocks[base + i];
            if (states) states[j] = c->states ? c->states[base + i] : 0;
            j++;
        }
    }
}
"""


# -- build + load ---------------------------------------------------------


def _cache_dir() -> Path:
    root = os.environ.get("XDG_CACHE_HOME") or os.path.join(
        os.path.expanduser("~"), ".cache"
    )
    return Path(root) / "jmmw"


def _find_compiler() -> str | None:
    for name in ("cc", "gcc", "clang"):
        path = shutil.which(name)
        if path:
            return path
    return None


def _build_library() -> Path | None:
    """Compile the embedded source (cached by source hash), or None."""
    digest = hashlib.sha256(_C_SOURCE.encode()).hexdigest()[:16]
    out = _cache_dir() / f"coherence-{digest}.so"
    if out.exists():
        return out
    compiler = _find_compiler()
    if compiler is None:
        return None
    try:
        out.parent.mkdir(parents=True, exist_ok=True)
        with tempfile.TemporaryDirectory(prefix="jmmw-cc-") as tmp:
            src = Path(tmp) / "coherence.c"
            src.write_text(_C_SOURCE, encoding="utf-8")
            built = Path(tmp) / "coherence.so"
            result = subprocess.run(
                [compiler, "-O3", "-fPIC", "-shared", "-o", str(built), str(src)],
                capture_output=True,
                timeout=120,
            )
            if result.returncode != 0:
                return None
            # Atomic publish: concurrent workers race benignly.
            os.replace(built, out)
        return out
    except (OSError, subprocess.SubprocessError):
        return None


_lib: ctypes.CDLL | None = None
_lib_tried = False

_i64 = ctypes.c_int64
_i32 = ctypes.c_int32
_u64p = ctypes.POINTER(ctypes.c_uint64)
_i64p = ctypes.POINTER(ctypes.c_int64)
_i32p = ctypes.POINTER(ctypes.c_int32)
_u8p = ctypes.POINTER(ctypes.c_uint8)


def _load_library() -> ctypes.CDLL | None:
    global _lib, _lib_tried
    if _lib_tried:
        return _lib
    _lib_tried = True
    path = _build_library()
    if path is None:
        return None
    try:
        lib = ctypes.CDLL(str(path))
    except OSError:
        return None
    lib.jmmw_new.restype = ctypes.c_void_p
    lib.jmmw_new.argtypes = [
        _i64, _i64, _i32p, _i32, _i32, _i32,
        _i64, _i64, _i64, _i64, _i64, _i64, _i64, _i64, _i64,
        _i64, _i32,
    ]
    lib.jmmw_free.argtypes = [ctypes.c_void_p]
    lib.jmmw_run.restype = _i32
    lib.jmmw_run.argtypes = [ctypes.c_void_p, _u64p, _i64p, _i64p, _i64]
    lib.jmmw_reset_stats.argtypes = [ctypes.c_void_p]
    lib.jmmw_get_stats.argtypes = [ctypes.c_void_p, _i64p, _i64p, _i64p, _i64p]
    lib.jmmw_table_used.restype = _i64
    lib.jmmw_table_used.argtypes = [ctypes.c_void_p]
    lib.jmmw_export_table.argtypes = [
        ctypes.c_void_p, _u64p, _u64p, _u64p, _u64p, _i64p, _u8p,
    ]
    lib.jmmw_cache_entries.restype = _i64
    lib.jmmw_cache_entries.argtypes = [ctypes.c_void_p, _i32, _i64]
    lib.jmmw_export_cache.argtypes = [
        ctypes.c_void_p, _i32, _i64, _i32p, _u64p, _i32p,
    ]
    _lib = lib
    return _lib


def kernel_available() -> bool:
    """Whether the compiled coherence kernel can be used here.

    The first call may pay a one-time compile (cached on disk by
    source hash); a missing compiler or failed build makes every
    default-path replay fall back to the scalar machine.
    """
    return _load_library() is not None


# -- replay ----------------------------------------------------------------


def _ptr(arr: np.ndarray, ctype):
    return arr.ctypes.data_as(ctypes.POINTER(ctype))


def _is_cold(hierarchy) -> bool:
    """True when nothing has run through this hierarchy yet."""
    bus = hierarchy.bus
    if bus.stats.total_misses or bus.stats.upgrades or bus.stats.silent_upgrades:
        return False
    if bus.mirrored_blocks():
        return False
    if any(c._ever_held or c._invalidated for c in bus.classifiers):
        return False
    if any(s.accesses for s in bus.cache_stats):
        return False
    if any(s.ifetches or s.loads or s.stores for s in hierarchy.proc_stats):
        return False
    caches = list(bus.caches) + list(hierarchy._l1i) + list(hierarchy._l1d)
    # any() over the per-set dicts runs at C speed; occupancy() would
    # cost real milliseconds per replay on big-cache machines.
    return not any(any(cache._sets) for cache in caches)


def _supported(hierarchy) -> bool:
    machine = hierarchy.machine
    if machine.n_l2_caches > 64:
        return False  # holders bitmask width
    if hierarchy.include_l1 and (
        machine.l2.block_bits < machine.l1i.block_bits
        or machine.l2.block_bits < machine.l1d.block_bits
    ):
        return False
    return True


def _export_stats(lib, m, hierarchy) -> None:
    """Copy the kernel's counters into the hierarchy's stat objects."""
    from repro.memsys.hierarchy import ProcessorStats

    n = hierarchy.machine.n_procs
    n_l2 = hierarchy.machine.n_l2_caches
    proc = np.zeros(n * len(PROC_FIELDS), dtype=np.int64)
    side = np.zeros(n_l2 * _N_SIDE, dtype=np.int64)
    bus = np.zeros(len(BUS_FIELDS), dtype=np.int64)
    l1s = np.zeros(n * 2 * 3, dtype=np.int64)
    lib.jmmw_get_stats(
        m, _ptr(proc, ctypes.c_int64), _ptr(side, ctypes.c_int64),
        _ptr(bus, ctypes.c_int64), _ptr(l1s, ctypes.c_int64),
    )
    proc = proc.reshape(n, len(PROC_FIELDS))
    hierarchy.proc_stats = [
        ProcessorStats(**{
            name: int(proc[cpu, i]) for i, name in enumerate(PROC_FIELDS)
        })
        for cpu in range(n)
    ]
    stats = CoherenceStats(**{
        name: int(bus[i]) for i, name in enumerate(BUS_FIELDS)
    })
    side = side.reshape(n_l2, _N_SIDE)
    cache_stats = []
    for cid in range(n_l2):
        cs = CacheSideStats(**{
            name: int(side[cid, i]) for i, name in enumerate(SIDE_FIELDS)
        })
        cs.misses_by_kind = {
            kind: int(side[cid, len(SIDE_FIELDS) + i])
            for i, kind in enumerate(_MISS_KINDS)
        }
        cache_stats.append(cs)
    hierarchy.bus.stats = stats
    hierarchy.bus.cache_stats = cache_stats
    l1s = l1s.reshape(n, 2, 3)
    for cpu in range(n):
        for kind_idx, cache in ((0, hierarchy._l1i[cpu]), (1, hierarchy._l1d[cpu])):
            cache.stats.accesses = int(l1s[cpu, kind_idx, 0])
            cache.stats.misses = int(l1s[cpu, kind_idx, 1])
            cache.stats.evictions = int(l1s[cpu, kind_idx, 2])


def _export_table(lib, m, hierarchy) -> None:
    """Rebuild holders mirror, classifier sets and per-line counts."""
    used = int(lib.jmmw_table_used(m))
    keys = np.zeros(used, dtype=np.uint64)
    holders = np.zeros(used, dtype=np.uint64)
    ever = np.zeros(used, dtype=np.uint64)
    inval = np.zeros(used, dtype=np.uint64)
    c2c = np.zeros(used, dtype=np.int64)
    touched = np.zeros(used, dtype=np.uint8)
    if used:
        lib.jmmw_export_table(
            m, _ptr(keys, ctypes.c_uint64), _ptr(holders, ctypes.c_uint64),
            _ptr(ever, ctypes.c_uint64), _ptr(inval, ctypes.c_uint64),
            _ptr(c2c, ctypes.c_int64), _ptr(touched, ctypes.c_uint8),
        )
    bus = hierarchy.bus
    n_l2 = hierarchy.machine.n_l2_caches
    # Few distinct holder masks occur in practice; memoize the bit
    # decomposition instead of scanning all cache ids per block.
    mask_cids: dict[int, tuple[int, ...]] = {}
    sel = holders != 0
    holders_dict = {}
    for block, mask in zip(keys[sel].tolist(), holders[sel].tolist()):
        cids = mask_cids.get(mask)
        if cids is None:
            cids = tuple(cid for cid in range(n_l2) if mask >> cid & 1)
            mask_cids[mask] = cids
        holders_dict[block] = set(cids)
    bus._holders = holders_dict
    for cid, classifier in enumerate(bus.classifiers):
        ever_sel = (ever >> np.uint64(cid) & np.uint64(1)).astype(bool)
        inval_sel = (inval >> np.uint64(cid) & np.uint64(1)).astype(bool)
        classifier._ever_held = set(keys[ever_sel].tolist())
        classifier._invalidated = set(keys[inval_sel].tolist())
    if bus._track:
        sel = c2c > 0
        bus.stats.c2c_by_line = dict(
            zip(keys[sel].tolist(), c2c[sel].tolist())
        )
        bus.stats.touched_lines = set(keys[touched.astype(bool)].tolist())


def _export_caches(lib, m, hierarchy) -> None:
    """Rebuild every cache's per-set dicts in exact LRU order."""
    machine = hierarchy.machine
    groups = [
        (0, hierarchy._l1i, machine.l1i, None),
        (1, hierarchy._l1d, machine.l1d, None),
        (2, list(hierarchy.bus.caches), machine.l2, State),
    ]
    for which, caches, config, state_enum in groups:
        if which in (0, 1) and not hierarchy.include_l1:
            continue
        for idx, cache in enumerate(caches):
            total = int(lib.jmmw_cache_entries(m, which, idx))
            set_counts = np.zeros(config.n_sets, dtype=np.int32)
            blocks = np.zeros(max(total, 1), dtype=np.uint64)
            states = np.zeros(max(total, 1), dtype=np.int32)
            lib.jmmw_export_cache(
                m, which, idx, _ptr(set_counts, ctypes.c_int32),
                _ptr(blocks, ctypes.c_uint64), _ptr(states, ctypes.c_int32),
            )
            block_list = blocks.tolist()
            sets = cache._sets
            if state_enum:
                # Map int -> enum member by index (Enum.__call__ is
                # far too slow for tens of thousands of lines), then
                # consume (block, state) pairs per set via islice —
                # cheaper than materializing two slices per set.
                lut = [None, State.SHARED, State.OWNED,
                       State.MODIFIED, State.EXCLUSIVE]
                pairs = zip(block_list, [lut[s] for s in states.tolist()])
                for si, count in enumerate(set_counts.tolist()):
                    if count:  # cold precondition: empty dicts stay
                        sets[si] = dict(islice(pairs, count))
            else:
                blocks_iter = iter(block_list)
                for si, count in enumerate(set_counts.tolist()):
                    if count:
                        sets[si] = dict.fromkeys(islice(blocks_iter, count), 0)


def _new_machine(lib, hierarchy):
    """Build one kernel machine for ``hierarchy``; falsy on failure."""
    machine = hierarchy.machine
    l2_of_cpu = np.array(hierarchy._l2_of_cpu, dtype=np.int32)
    return lib.jmmw_new(
        machine.n_procs, machine.n_l2_caches, _ptr(l2_of_cpu, ctypes.c_int32),
        _PROTOCOL_IDS[hierarchy.bus.protocol],
        int(hierarchy.include_l1), int(hierarchy.bus._track),
        machine.l1i.n_sets, machine.l1i.assoc, machine.l1i.block_bits,
        machine.l1d.n_sets, machine.l1d.assoc, machine.l1d.block_bits,
        machine.l2.n_sets, machine.l2.assoc, machine.l2.block_bits,
        INSTRUCTIONS_PER_IFETCH, _defect,
    )


def run_trace_kernel(
    hierarchy, per_cpu_traces, quantum: int, warmup_fraction: float
) -> bool:
    """Replay through the compiled kernel; False means "use scalar".

    Arguments mirror :meth:`MemoryHierarchy.run_trace` (already
    validated by the caller).  On success the hierarchy's caches, bus
    mirror, classifier history and every counter hold exactly the
    state the scalar replay would have produced.
    """
    lib = _load_library()
    if lib is None or not _supported(hierarchy) or not _is_cold(hierarchy):
        _obs.incr("memsys/fastpath/coherent_fallback")
        return False
    traces = [np.ascontiguousarray(t, dtype=np.uint64) for t in per_cpu_traces]
    lens = np.array([t.size for t in traces], dtype=np.int64)
    offs = np.zeros(len(traces), dtype=np.int64)
    np.cumsum(lens[:-1], out=offs[1:])
    flat = (
        np.concatenate(traces) if traces and lens.sum()
        else np.zeros(1, dtype=np.uint64)
    )
    m = _new_machine(lib, hierarchy)
    if not m:
        _obs.incr("memsys/fastpath/coherent_fallback")
        return False
    try:
        splits = np.array(
            [int(n * warmup_fraction) for n in lens.tolist()], dtype=np.int64
        )
        if warmup_fraction > 0.0:
            leaves = [(offs, splits), (offs + splits, lens - splits)]
        else:
            leaves = [(offs, lens)]
        for i, (leaf_offs, leaf_lens) in enumerate(leaves):
            if i > 0:
                lib.jmmw_reset_stats(m)
            bus_before = None
            if _obs.enabled():
                bus_before = np.zeros(len(BUS_FIELDS), dtype=np.int64)
                lib.jmmw_get_stats(
                    m, None, None, _ptr(bus_before, ctypes.c_int64), None
                )
            leaf_offs = np.ascontiguousarray(leaf_offs, dtype=np.int64)
            leaf_lens = np.ascontiguousarray(leaf_lens, dtype=np.int64)
            with _obs.span(
                "memsys/replay",
                refs=int(leaf_lens.sum()),
                procs=len(traces),
            ):
                rc = lib.jmmw_run(
                    m, _ptr(flat, ctypes.c_uint64),
                    _ptr(leaf_offs, ctypes.c_int64),
                    _ptr(leaf_lens, ctypes.c_int64), quantum,
                )
            if rc != 0:
                # Allocation failure mid-replay: the machine state is
                # unusable, but the Python hierarchy is untouched.
                _obs.incr("memsys/fastpath/coherent_fallback")
                return False
            if bus_before is not None:
                bus_after = np.zeros(len(BUS_FIELDS), dtype=np.int64)
                lib.jmmw_get_stats(
                    m, None, None, _ptr(bus_after, ctypes.c_int64), None
                )
                for name, before, after in zip(
                    BUS_FIELDS, bus_before.tolist(), bus_after.tolist()
                ):
                    if after - before:
                        _obs.incr(f"memsys/bus/{name}", after - before)
                _obs.incr("memsys/replay/refs", int(leaf_lens.sum()))
        _export_stats(lib, m, hierarchy)
        _export_table(lib, m, hierarchy)
        _export_caches(lib, m, hierarchy)
    finally:
        lib.jmmw_free(m)
    _obs.incr("memsys/fastpath/coherent_replay")
    return True


class KernelSession:
    """A persistent kernel machine for windowed (streamed) replay.

    Where :func:`run_trace_kernel` replays one materialized trace and
    frees its machine, a session keeps the machine alive across many
    :meth:`run` calls: caches, the sharing table, classifier history
    and every counter carry over, which is exactly what chunked replay
    needs — the machine *is* the carried state.  The lifecycle is
    ``begin`` (None means "kernel unavailable here: use the scalar
    loop"), any number of ``run``/``reset_stats`` calls, then
    ``finish`` to export everything back into the Python hierarchy
    (or ``abort`` to free without exporting).

    Unlike the materialized path there is no mid-stream fallback: the
    chunks already replayed cannot be replayed again scalar, so an
    allocation failure inside ``run`` raises
    :class:`~repro.errors.SimulationError`.
    """

    def __init__(self, lib, m, hierarchy) -> None:
        self._lib = lib
        self._m = m
        self._hierarchy = hierarchy
        self._closed = False

    @classmethod
    def begin(cls, hierarchy) -> "KernelSession | None":
        """Open a session, or None when the kernel cannot serve it."""
        lib = _load_library()
        if lib is None or not _supported(hierarchy) or not _is_cold(hierarchy):
            _obs.incr("memsys/fastpath/coherent_fallback")
            return None
        m = _new_machine(lib, hierarchy)
        if not m:
            _obs.incr("memsys/fastpath/coherent_fallback")
            return None
        return cls(lib, m, hierarchy)

    def run(self, per_cpu_arrays, quantum: int) -> None:
        """Replay one window: ``per_cpu_arrays[cpu]`` is that
        processor's references for this window (None or empty for
        processors sitting the window out).

        The kernel round-robins a ``quantum`` per processor exactly
        like the materialized replay, so consecutive windows
        concatenate to the same global schedule.
        """
        from repro.errors import SimulationError

        if self._closed:
            raise SimulationError("kernel session already closed")
        traces = [
            np.ascontiguousarray(t, dtype=np.uint64)
            if t is not None else np.zeros(0, dtype=np.uint64)
            for t in per_cpu_arrays
        ]
        lens = np.array([t.size for t in traces], dtype=np.int64)
        offs = np.zeros(len(traces), dtype=np.int64)
        np.cumsum(lens[:-1], out=offs[1:])
        flat = (
            np.concatenate(traces) if traces and lens.sum()
            else np.zeros(1, dtype=np.uint64)
        )
        rc = self._lib.jmmw_run(
            self._m, _ptr(flat, ctypes.c_uint64),
            _ptr(offs, ctypes.c_int64), _ptr(lens, ctypes.c_int64), quantum,
        )
        if rc != 0:
            self.abort()
            raise SimulationError(
                "coherence kernel allocation failure mid-stream; the "
                "consumed chunks cannot be replayed scalar"
            )

    def reset_stats(self) -> None:
        """Zero every counter (warmup/measurement boundary); cache and
        sharing state are untouched."""
        self._lib.jmmw_reset_stats(self._m)

    def bus_counters(self) -> np.ndarray:
        """Current bus counters (for obs deltas around a phase)."""
        counters = np.zeros(len(BUS_FIELDS), dtype=np.int64)
        self._lib.jmmw_get_stats(
            self._m, None, None, _ptr(counters, ctypes.c_int64), None
        )
        return counters

    def publish_bus_delta(self, before: np.ndarray, refs: int) -> None:
        """Publish obs counter deltas since ``before`` (one phase)."""
        after = self.bus_counters()
        for name, b, a in zip(BUS_FIELDS, before.tolist(), after.tolist()):
            if a - b:
                _obs.incr(f"memsys/bus/{name}", a - b)
        _obs.incr("memsys/replay/refs", int(refs))

    def finish(self) -> None:
        """Export machine state into the hierarchy and free it."""
        if self._closed:
            return
        self._closed = True
        try:
            _export_stats(self._lib, self._m, self._hierarchy)
            _export_table(self._lib, self._m, self._hierarchy)
            _export_caches(self._lib, self._m, self._hierarchy)
        finally:
            self._lib.jmmw_free(self._m)
        _obs.incr("memsys/fastpath/coherent_replay")

    def abort(self) -> None:
        """Free the machine without exporting (error paths)."""
        if self._closed:
            return
        self._closed = True
        self._lib.jmmw_free(self._m)
