"""LRU stack-distance profiling.

Mattson's inclusion property: for fully-associative LRU caches, an
access hits in every cache of capacity greater than its *stack
distance* (number of distinct blocks touched since the previous access
to the same block).  One pass over a trace therefore yields the miss
count for every capacity simultaneously — the cheap first-order tool
behind working-set statements like the paper's "primary working sets
are small" claim, complementing the exact set-associative sweeps in
:mod:`repro.memsys.multisim`.

Implementation: a vectorized offline pass (see
:func:`repro.memsys.fastpath.stack_distances`) with the classic
O(n log n) Fenwick-tree formulation retained as the scalar reference
(``histogram(fastpath=False)``); both produce identical histograms.

A profiler built with ``streaming=True`` switches to the mergeable
formulation (:class:`repro.memsys.stream.StackAccumulator`): each
:meth:`feed` folds its chunk into the histogram immediately, carrying
only the LRU stack (every distinct block in last-access order) between
chunks, so memory is O(footprint) instead of O(references).  The
merged histogram is bit-identical to the offline passes.
"""

from __future__ import annotations

import numpy as np

from repro.errors import AnalysisError


class _Fenwick:
    """Binary indexed tree for prefix sums over timestamps."""

    def __init__(self, n: int) -> None:
        self._tree = [0] * (n + 1)
        self._n = n

    def add(self, index: int, delta: int) -> None:
        i = index + 1
        tree = self._tree
        n = self._n
        while i <= n:
            tree[i] += delta
            i += i & (-i)

    def prefix_sum(self, index: int) -> int:
        """Sum of elements [0, index]."""
        i = index + 1
        tree = self._tree
        total = 0
        while i > 0:
            total += tree[i]
            i -= i & (-i)
        return total


class StackDistanceProfiler:
    """Accumulates an LRU stack-distance histogram over block streams."""

    #: Histogram bucket for cold (first-touch) accesses.
    COLD = -1

    def __init__(self, streaming: bool = False) -> None:
        self._accesses: list[int] = []
        self._histogram: dict[int, int] | None = None
        self._accumulator = None
        if streaming:
            from repro.memsys.stream import StackAccumulator

            self._accumulator = StackAccumulator()

    def feed(self, blocks: list[int]) -> None:
        """Append a stream of block addresses to the profile.

        Accepts plain lists or numpy arrays.  A materialized profiler
        keeps the accesses and invalidates any memoized histogram; a
        streaming profiler folds the chunk into its histogram now and
        keeps only the carried LRU stack.
        """
        if self._accumulator is not None:
            self._accumulator.feed(np.asarray(blocks, dtype=np.int64))
            return
        if isinstance(blocks, np.ndarray):
            blocks = blocks.tolist()
        self._accesses.extend(blocks)
        self._histogram = None

    @property
    def n_accesses(self) -> int:
        if self._accumulator is not None:
            return self._accumulator.n_accesses
        return len(self._accesses)

    def histogram(self, fastpath: bool | None = None) -> dict[int, int]:
        """Return {stack_distance: count}; COLD (-1) counts first touches.

        The result is memoized until the next :meth:`feed` —
        :meth:`misses_at` and :meth:`working_set_size` both call this,
        and previously each call redid the full O(n log n) pass.
        ``fastpath`` selects the vectorized pass (default per
        :func:`repro.memsys.fastpath.fastpath_enabled`) or the scalar
        Fenwick reference; both are bit-identical, so the memo is
        shared.  Streaming profilers return the chunk-merged histogram
        (always vectorized; ``fastpath`` is ignored) — identical to
        either offline pass over the concatenated feeds.
        """
        if self._accumulator is not None:
            return self._accumulator.histogram()
        if self._histogram is None:
            from repro.memsys import fastpath as _fastpath

            use_fast = _fastpath.fastpath_enabled() if fastpath is None else fastpath
            if use_fast:
                self._histogram = _fastpath.stack_distance_histogram(self._accesses)
            else:
                self._histogram = self._scalar_histogram()
        return dict(self._histogram)

    def _scalar_histogram(self) -> dict[int, int]:
        """The Fenwick-tree reference implementation."""
        accesses = self._accesses
        n = len(accesses)
        hist: dict[int, int] = {}
        if n == 0:
            return hist
        tree = _Fenwick(n)
        last_seen: dict[int, int] = {}
        for t, block in enumerate(accesses):
            prev = last_seen.get(block)
            if prev is None:
                distance = self.COLD
            else:
                # Distinct blocks touched in (prev, t): each block
                # contributes at most one mark (its latest access).
                distance = tree.prefix_sum(t - 1) - tree.prefix_sum(prev)
                tree.add(prev, -1)
            hist[distance] = hist.get(distance, 0) + 1
            tree.add(t, +1)
            last_seen[block] = t
        return hist

    def misses_at(self, capacities: list[int]) -> dict[int, int]:
        """Miss counts for fully-associative LRU caches of given capacities.

        ``capacities`` are in blocks.  An access with stack distance d
        hits iff capacity > d; cold accesses always miss.
        """
        if any(c <= 0 for c in capacities):
            raise AnalysisError("capacities must be positive block counts")
        hist = self.histogram()
        cold = hist.get(self.COLD, 0)
        # Sort distances once, then answer each capacity by summing the tail.
        finite = sorted((d, c) for d, c in hist.items() if d != self.COLD)
        out: dict[int, int] = {}
        for cap in capacities:
            tail = sum(count for dist, count in finite if dist >= cap)
            out[cap] = cold + tail
        return out

    def working_set_size(self, hit_fraction: float = 0.95) -> int:
        """Smallest capacity (blocks) achieving ``hit_fraction`` of warm hits.

        The "primary working set" metric: how many blocks a
        fully-associative cache needs so that the given fraction of
        non-cold accesses hit.
        """
        if not 0.0 < hit_fraction <= 1.0:
            raise AnalysisError("hit_fraction must be in (0, 1]")
        hist = self.histogram()
        finite = sorted((d, c) for d, c in hist.items() if d != self.COLD)
        total = sum(c for _, c in finite)
        if total == 0:
            return 0
        needed = hit_fraction * total
        seen = 0
        for dist, count in finite:
            seen += count
            if seen >= needed:
                return dist + 1
        return finite[-1][0] + 1
