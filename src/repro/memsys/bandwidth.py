"""Snooping-bus bandwidth model (Gigaplane-class).

The E6000's processors share one address-snoop/data bus; every L2 miss
occupies an address slot and a data transfer, every writeback a data
transfer.  The paper attributes ECperf's post-peak decline mostly to
software contention, but a 16-processor snooping machine also runs
into the bus itself — this model quantifies how close each simulated
configuration gets, and the queueing slowdown misses would see.

Modeled after the Sun Gigaplane: split-transaction, one address slot
per bus cycle, 256-bit data path at ~83 MHz.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.memsys.hierarchy import MemoryHierarchy


@dataclass(frozen=True)
class BusModel:
    """Shared-bus capacity in transactions per second."""

    bus_clock_hz: float = 83.3e6
    data_bytes_per_cycle: int = 32  # 256-bit data path
    address_slots_per_cycle: float = 1.0

    def __post_init__(self) -> None:
        if self.bus_clock_hz <= 0 or self.data_bytes_per_cycle <= 0:
            raise ConfigError("bus clock and width must be positive")
        if self.address_slots_per_cycle <= 0:
            raise ConfigError("address_slots_per_cycle must be positive")

    @property
    def data_bandwidth_bytes_per_s(self) -> float:
        return self.bus_clock_hz * self.data_bytes_per_cycle

    @property
    def snoop_rate_per_s(self) -> float:
        return self.bus_clock_hz * self.address_slots_per_cycle

    def utilization(
        self,
        transactions_per_s: float,
        data_transfers_per_s: float,
        block_bytes: int = 64,
    ) -> float:
        """Bus utilization: the max of the address and data channels.

        A split-transaction bus saturates on whichever channel fills
        first; snoops cost address slots, fills and writebacks cost
        ``block_bytes`` of data bandwidth.
        """
        if min(transactions_per_s, data_transfers_per_s) < 0:
            raise ConfigError("rates must be non-negative")
        address_util = transactions_per_s / self.snoop_rate_per_s
        data_util = (
            data_transfers_per_s * block_bytes / self.data_bandwidth_bytes_per_s
        )
        return max(address_util, data_util)

    @staticmethod
    def queueing_slowdown(utilization: float) -> float:
        """Latency inflation under load (M/M/1-style, capped).

        >>> BusModel.queueing_slowdown(0.0)
        1.0
        >>> BusModel.queueing_slowdown(0.5)
        2.0
        """
        if utilization < 0:
            raise ConfigError("utilization must be non-negative")
        rho = min(utilization, 0.95)
        return 1.0 / (1.0 - rho)

    def utilization_of(
        self,
        hierarchy: MemoryHierarchy,
        cpi: float,
        clock_hz: float = 248e6,
    ) -> float:
        """Bus utilization implied by a simulated hierarchy's counters.

        Converts the measurement interval's miss counts into rates via
        the CPI estimate (cycles = instructions * CPI at ``clock_hz``).
        """
        if cpi <= 0 or clock_hz <= 0:
            raise ConfigError("cpi and clock must be positive")
        instructions = hierarchy.total_instructions
        if instructions == 0:
            return 0.0
        seconds = instructions * cpi / clock_hz
        stats = hierarchy.bus.stats
        transactions = stats.total_misses + stats.upgrades
        data_transfers = stats.total_misses + stats.writebacks
        return self.utilization(
            transactions / seconds,
            data_transfers / seconds,
            block_bytes=hierarchy.machine.l2.block,
        )
