"""Store-buffer occupancy model.

The UltraSPARC II retires stores through a store buffer; a store
stalls the pipeline only when the buffer is full at issue ("the cycles
spent waiting for a full store buffer to be flushed").  The paper
finds these stalls contribute only 1-2% of execution time
(Section 4.2) — small, but part of the stall decomposition in
Figure 7, so we model the buffer explicitly.

The model is a FIFO of completion times: each issued store occupies an
entry until its drain completes (drain latency depends on where the
store hits).  Issuing into a full buffer stalls until the oldest entry
drains.
"""

from __future__ import annotations

from collections import deque

from repro.errors import ConfigError


class StoreBuffer:
    """FIFO store buffer with per-store drain latencies.

    >>> sb = StoreBuffer(depth=2)
    >>> sb.issue(now=0, drain_latency=10)   # empty buffer: no stall
    0
    >>> sb.issue(now=1, drain_latency=10)
    0
    >>> stall = sb.issue(now=2, drain_latency=10)   # full: wait for head
    >>> stall > 0
    True
    """

    def __init__(self, depth: int = 8) -> None:
        if depth <= 0:
            raise ConfigError(f"store buffer depth must be positive, got {depth}")
        self.depth = depth
        self.stall_cycles = 0
        self.stores = 0
        self.stalled_stores = 0
        self._completions: deque[int] = deque()
        self._last_drain_done = 0

    def issue(self, now: int, drain_latency: int) -> int:
        """Issue a store at cycle ``now``; returns stall cycles incurred."""
        if drain_latency <= 0:
            raise ConfigError("drain_latency must be positive")
        self.stores += 1
        completions = self._completions
        while completions and completions[0] <= now:
            completions.popleft()
        stall = 0
        if len(completions) >= self.depth:
            # Full: the store cannot enter until the head entry drains.
            stall = completions[0] - now
            self.stall_cycles += stall
            self.stalled_stores += 1
            while completions and completions[0] <= now + stall:
                completions.popleft()
        # Stores drain in order; each drain starts after the previous one.
        start = max(now + stall, self._last_drain_done)
        done = start + drain_latency
        self._last_drain_done = done
        completions.append(done)
        return stall

    @property
    def occupancy(self) -> int:
        """Entries currently holding un-drained stores."""
        return len(self._completions)

    def stall_fraction(self, total_cycles: int) -> float:
        """Store-buffer stall cycles as a fraction of total cycles."""
        return self.stall_cycles / total_cycles if total_cycles else 0.0
