"""Latency book for the simulated machine.

The paper decomposes data stall time by multiplying event frequencies
with published access times for the Sun E6000 (Section 4.2: "Because
some factors are estimated using frequency counts multiplied by
published access times...").  We adopt the same methodology; this
module is the single source of those access times.

Key property from the paper (Section 4.3): on the E6000 a
cache-to-cache transfer takes roughly 40% *longer* than a fetch from
main memory, because the owning cache must be snooped and copy the
line back over the bus.  On NUMA machines the penalty is 200-300%;
``numa()`` builds such a book for sensitivity studies.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import ConfigError


@dataclass(frozen=True)
class LatencyBook:
    """Access latencies in processor cycles.

    Attributes:
        l1_hit: load-to-use latency of a first-level cache hit.
        l2_hit: latency of an L1 miss that hits in the L2.
        memory: latency of an L2 miss satisfied by main memory.
        cache_to_cache: latency of an L2 miss satisfied by another
            processor's cache (snoop copyback).
        tlb_miss: software TLB-fill penalty.
        store_buffer_drain: cycles to retire one store from the store
            buffer once it reaches the head.
    """

    l1_hit: int = 1
    l2_hit: int = 10
    memory: int = 135
    cache_to_cache: int = 189
    tlb_miss: int = 60
    store_buffer_drain: int = 4

    def __post_init__(self) -> None:
        if not (0 < self.l1_hit <= self.l2_hit <= self.memory):
            raise ConfigError(
                "latencies must satisfy 0 < l1_hit <= l2_hit <= memory, got "
                f"{self.l1_hit}/{self.l2_hit}/{self.memory}"
            )
        if self.cache_to_cache <= 0 or self.tlb_miss < 0:
            raise ConfigError("cache_to_cache must be positive, tlb_miss >= 0")

    @property
    def c2c_penalty_ratio(self) -> float:
        """Cache-to-cache latency relative to memory (1.4 on the E6000)."""
        return self.cache_to_cache / self.memory

    def with_c2c_ratio(self, ratio: float) -> "LatencyBook":
        """Return a copy with the C2C/memory ratio set to ``ratio``."""
        if ratio <= 0:
            raise ConfigError(f"c2c ratio must be positive, got {ratio}")
        return replace(self, cache_to_cache=int(round(self.memory * ratio)))


#: The E6000 book used throughout the reproduction: ~550 ns memory at
#: 248 MHz is ~135 cycles, and C2C is 40% longer (Section 4.3, [8]).
E6000_LATENCIES = LatencyBook()


def numa(indirection_ratio: float = 2.5) -> LatencyBook:
    """A NUMA-like book where C2C costs 200-300% of memory (GS320-style)."""
    return E6000_LATENCIES.with_c2c_ratio(indirection_ratio)
