"""Replay one trace through many cache geometries at once.

Figures 12 and 13 sweep cache sizes from 64 KB to 16 MB for four
workload configurations.  Generating a fresh trace per (workload,
size) point would dominate runtime and add sampling noise between
points, so the figure drivers generate each workload's trace once and
replay it through every geometry in a single pass.

Warmup handling follows the paper's steady-state reporting: the first
``warmup_fraction`` of the trace fills the caches, then counters are
snapshotted and only the remainder is reported.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.memsys.config import CacheConfig
from repro.errors import ConfigError
from repro.memsys.block import IFETCH, INSTRUCTIONS_PER_IFETCH, STORE
from repro.memsys.cache import SetAssociativeCache


@dataclass
class MissCurvePoint:
    """One point of a miss-rate-vs-size curve."""

    size: int
    accesses: int
    misses: int
    mpki: float

    @property
    def miss_ratio(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0


class MultiConfigSimulator:
    """Drives N independent caches with the same reference stream.

    The stream is pre-split by reference class: instruction fetches go
    to instruction caches, loads/stores to data caches, so the caller
    chooses which class a sweep measures (the paper's figures report
    split I/D miss rates).
    """

    def __init__(self, configs: list[CacheConfig], kind: str) -> None:
        if kind not in ("instr", "data"):
            raise ConfigError(f"kind must be 'instr' or 'data', got {kind!r}")
        if not configs:
            raise ConfigError("need at least one cache config")
        self.kind = kind
        self.caches = [SetAssociativeCache(cfg) for cfg in configs]
        self._block_bits = [cfg.block_bits for cfg in configs]
        self.instructions = 0
        self._warm_instructions = 0
        self._warm_stats: list[tuple[int, int]] | None = None

    def replay(self, trace: list[int]) -> None:
        """Feed every relevant reference in ``trace`` to all caches."""
        want_instr = self.kind == "instr"
        caches = self.caches
        bits = self._block_bits
        n = len(caches)
        for ref in trace:
            kind = ref & 0x3
            if kind == IFETCH:
                self.instructions += INSTRUCTIONS_PER_IFETCH
                if not want_instr:
                    continue
                write = False
            else:
                if want_instr:
                    continue
                write = kind == STORE
            addr = ref >> 2
            for i in range(n):
                caches[i].access(addr >> bits[i], write)

    def mark_warm(self) -> None:
        """Snapshot counters: everything before this call is warmup."""
        self._warm_stats = [(c.stats.accesses, c.stats.misses) for c in self.caches]
        self._warm_instructions = self.instructions

    def results(self) -> list[MissCurvePoint]:
        """Miss-curve points over the post-warmup window."""
        warm = self._warm_stats or [(0, 0)] * len(self.caches)
        instr = self.instructions - self._warm_instructions
        points = []
        for cache, (warm_acc, warm_miss) in zip(self.caches, warm):
            accesses = cache.stats.accesses - warm_acc
            misses = cache.stats.misses - warm_miss
            mpki = 1000.0 * misses / instr if instr else 0.0
            points.append(
                MissCurvePoint(
                    size=cache.config.size,
                    accesses=accesses,
                    misses=misses,
                    mpki=mpki,
                )
            )
        return points


def simulate_miss_curve(
    trace: list[int],
    sizes: list[int],
    kind: str,
    assoc: int = 4,
    block: int = 64,
    warmup_fraction: float = 0.2,
) -> list[MissCurvePoint]:
    """Miss rate (MPKI) at each cache size, from one trace.

    Mirrors the paper's sweep setup: split caches, 4-way set
    associative, 64-byte blocks (Section 5.1).
    """
    if not 0.0 <= warmup_fraction < 1.0:
        raise ConfigError("warmup_fraction must be in [0, 1)")
    configs = [
        CacheConfig(size=s, assoc=assoc, block=block, name=f"{kind}-{s}")
        for s in sizes
    ]
    sim = MultiConfigSimulator(configs, kind=kind)
    split = int(len(trace) * warmup_fraction)
    sim.replay(trace[:split])
    sim.mark_warm()
    sim.replay(trace[split:])
    return sim.results()
