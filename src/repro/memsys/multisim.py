"""Replay one trace through many cache geometries at once.

Figures 12 and 13 sweep cache sizes from 64 KB to 16 MB for four
workload configurations.  Generating a fresh trace per (workload,
size) point would dominate runtime and add sampling noise between
points, so the figure drivers generate each workload's trace once and
replay it through every geometry in a single pass.

Warmup handling follows the paper's steady-state reporting: the first
``warmup_fraction`` of the trace fills the caches, then counters are
snapshotted and only the remainder is reported.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import obs as _obs
from repro.memsys.config import CacheConfig
from repro.errors import ConfigError, InvariantViolation, SimulationError
from repro.memsys.block import IFETCH, INSTRUCTIONS_PER_IFETCH, STORE
from repro.memsys.cache import SetAssociativeCache


@dataclass
class MissCurvePoint:
    """One point of a miss-rate-vs-size curve."""

    size: int
    accesses: int
    misses: int
    mpki: float

    @property
    def miss_ratio(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0


class MultiConfigSimulator:
    """Drives N independent caches with the same reference stream.

    The stream is pre-split by reference class: instruction fetches go
    to instruction caches, loads/stores to data caches, so the caller
    chooses which class a sweep measures (the paper's figures report
    split I/D miss rates).
    """

    def __init__(
        self,
        configs: list[CacheConfig],
        kind: str,
        warmup_fraction: float = 0.0,
    ) -> None:
        if kind not in ("instr", "data"):
            raise ConfigError(f"kind must be 'instr' or 'data', got {kind!r}")
        if not configs:
            raise ConfigError("need at least one cache config")
        if not 0.0 <= warmup_fraction < 1.0:
            raise ConfigError("warmup_fraction must be in [0, 1)")
        self.kind = kind
        self.caches = [SetAssociativeCache(cfg) for cfg in configs]
        self._block_bits = [cfg.block_bits for cfg in configs]
        self.instructions = 0
        self.warmup_fraction = warmup_fraction
        self._warm_instructions = 0
        self._warm_stats: list[tuple[int, int]] | None = None

    def replay(self, trace: list[int]) -> None:
        """Feed every relevant reference in ``trace`` to all caches.

        The trace is split by reference class once, up front: the kind
        tag is read exactly once per reference and the discarded class
        never enters the replay loop (it used to be decoded and skipped
        reference by reference).
        """
        refs = np.asarray(trace, dtype=np.uint64)
        kinds = refs & np.uint64(0x3)
        is_ifetch = kinds == IFETCH
        self.instructions += int(np.count_nonzero(is_ifetch)) * INSTRUCTIONS_PER_IFETCH
        want_instr = self.kind == "instr"
        mask = is_ifetch if want_instr else ~is_ifetch
        addrs = (refs >> np.uint64(2))[mask].tolist()
        caches = self.caches
        bits = self._block_bits
        n = len(caches)
        if want_instr:
            for addr in addrs:
                for i in range(n):
                    caches[i].access(addr >> bits[i], False)
        else:
            writes = (kinds[mask] == STORE).tolist()
            for addr, write in zip(addrs, writes):
                for i in range(n):
                    caches[i].access(addr >> bits[i], write)

    def mark_warm(self) -> None:
        """Snapshot counters: everything before this call is warmup."""
        self._warm_stats = [(c.stats.accesses, c.stats.misses) for c in self.caches]
        self._warm_instructions = self.instructions

    def verify(self) -> None:
        """Check the sweep's internal consistency.

        Raises :class:`~repro.errors.InvariantViolation` when the
        replay machinery has corrupted itself: every cache must have
        seen the same reference stream (identical access counts),
        misses can never exceed accesses, occupancy can never exceed
        capacity, and a warmup snapshot can never run ahead of the
        live counters it was taken from.
        """
        accesses = {cache.stats.accesses for cache in self.caches}
        if len(accesses) > 1:
            raise InvariantViolation(
                f"caches saw different reference streams: access counts "
                f"{sorted(accesses)}"
            )
        for cache in self.caches:
            name = cache.config.name or f"{cache.config.size}B"
            if cache.stats.misses > cache.stats.accesses:
                raise InvariantViolation(
                    f"cache {name}: misses ({cache.stats.misses}) > "
                    f"accesses ({cache.stats.accesses})"
                )
            capacity = cache.config.assoc * cache.config.n_sets
            if cache.occupancy() > capacity:
                raise InvariantViolation(
                    f"cache {name}: occupancy ({cache.occupancy()}) exceeds "
                    f"capacity ({capacity})"
                )
        if self._warm_stats is not None:
            if self._warm_instructions > self.instructions:
                raise InvariantViolation(
                    f"warmup snapshot has more instructions "
                    f"({self._warm_instructions}) than the live counter "
                    f"({self.instructions})"
                )
            for cache, (warm_acc, warm_miss) in zip(self.caches, self._warm_stats):
                if warm_acc > cache.stats.accesses or warm_miss > cache.stats.misses:
                    raise InvariantViolation(
                        f"warmup snapshot ({warm_acc} accesses, {warm_miss} "
                        f"misses) runs ahead of live counters "
                        f"({cache.stats.accesses}, {cache.stats.misses})"
                    )

    def results(self) -> list[MissCurvePoint]:
        """Miss-curve points over the post-warmup window.

        Verifies internal consistency first (see :meth:`verify`).
        Raises :class:`~repro.errors.SimulationError` when a warmup
        window was requested at construction but :meth:`mark_warm` was
        never called — every reported point would silently include the
        cold-start transient the caller asked to exclude.
        """
        self.verify()
        if self._warm_stats is None and self.warmup_fraction > 0.0:
            raise SimulationError(
                f"results() called without a mark_warm() snapshot, but "
                f"warmup_fraction={self.warmup_fraction} was requested; "
                f"replay the warmup window and call mark_warm() first"
            )
        warm = self._warm_stats or [(0, 0)] * len(self.caches)
        instr = self.instructions - self._warm_instructions
        points = []
        for cache, (warm_acc, warm_miss) in zip(self.caches, warm):
            accesses = cache.stats.accesses - warm_acc
            misses = cache.stats.misses - warm_miss
            mpki = 1000.0 * misses / instr if instr else 0.0
            points.append(
                MissCurvePoint(
                    size=cache.config.size,
                    accesses=accesses,
                    misses=misses,
                    mpki=mpki,
                )
            )
        return points


def simulate_miss_curve(
    trace: list[int],
    sizes: list[int],
    kind: str,
    assoc: int = 4,
    block: int = 64,
    warmup_fraction: float = 0.2,
    fastpath: bool | None = None,
) -> list[MissCurvePoint]:
    """Miss rate (MPKI) at each cache size, from one trace.

    Mirrors the paper's sweep setup: split caches, 4-way set
    associative, 64-byte blocks (Section 5.1).

    ``fastpath`` selects the vectorized replay kernels
    (:mod:`repro.memsys.fastpath`); the default (``None``) follows
    :func:`repro.memsys.fastpath.fastpath_enabled`.  Both paths produce
    bit-identical points (enforced by ``tests/memsys/test_fastpath.py``);
    ``fastpath=False`` is the scalar reference implementation.
    """
    if not 0.0 <= warmup_fraction < 1.0:
        raise ConfigError("warmup_fraction must be in [0, 1)")
    from repro.memsys import fastpath as _fastpath

    configs = [
        CacheConfig(size=s, assoc=assoc, block=block, name=f"{kind}-{s}")
        for s in sizes
    ]
    split = int(len(trace) * warmup_fraction)
    use_fast = _fastpath.fastpath_enabled() if fastpath is None else fastpath
    with _obs.span(
        "memsys/miss_curve",
        kind=kind, points=len(sizes), refs=len(trace), fastpath=use_fast,
    ):
        if use_fast:
            return _fastpath.miss_curve_points(trace, configs, kind, split=split)
        _obs.incr("memsys/multisim/scalar_replays")
        sim = MultiConfigSimulator(
            configs, kind=kind, warmup_fraction=warmup_fraction
        )
        sim.replay(trace[:split])
        sim.mark_warm()
        sim.replay(trace[split:])
        return sim.results()
