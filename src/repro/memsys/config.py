"""Cache and machine geometry configuration.

All validation happens at construction time (fail fast, before cycles
are spent).  The presets mirror the paper's hardware: a Sun E6000 with
16 UltraSPARC II processors, split 16 KB L1 caches, 1 MB 4-way L2
caches with 64-byte lines, and a snooping coherence bus.

These classes live in :mod:`repro.memsys` because they describe cache
geometry; :mod:`repro.core.config` re-exports them alongside the
simulation-control config.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.errors import ConfigError
from repro.memsys.latency import E6000_LATENCIES, LatencyBook
from repro.units import format_size, is_power_of_two, kb, log2_int, mb


@dataclass(frozen=True)
class CacheConfig:
    """Geometry of one cache.

    >>> CacheConfig(size=mb(1), assoc=4, block=64).n_sets
    4096
    """

    size: int
    assoc: int = 4
    block: int = 64
    name: str = "cache"

    def __post_init__(self) -> None:
        if self.size <= 0 or self.assoc <= 0 or self.block <= 0:
            raise ConfigError("cache size, associativity and block must be positive")
        if not is_power_of_two(self.block):
            raise ConfigError(f"block size must be a power of two, got {self.block}")
        if self.block < 32:
            raise ConfigError(
                "block sizes below 32 B are not supported: workloads emit "
                "instruction fetches at 32 B granularity"
            )
        if self.size % (self.assoc * self.block) != 0:
            raise ConfigError(
                f"{self.name}: size {self.size} is not divisible by "
                f"assoc*block = {self.assoc * self.block}"
            )
        if not is_power_of_two(self.n_sets):
            raise ConfigError(f"{self.name}: number of sets must be a power of two")

    @property
    def n_sets(self) -> int:
        return self.size // (self.assoc * self.block)

    @property
    def block_bits(self) -> int:
        return log2_int(self.block)

    @property
    def set_mask(self) -> int:
        return self.n_sets - 1

    def scaled(self, size: int) -> "CacheConfig":
        """Same organization, different capacity."""
        return replace(self, size=size)

    def describe(self) -> str:
        return (
            f"{self.name}: {format_size(self.size)}, {self.assoc}-way, "
            f"{self.block} B blocks, {self.n_sets} sets"
        )


@dataclass(frozen=True)
class MachineConfig:
    """A multiprocessor memory-system configuration.

    ``procs_per_l2`` models the shared-cache CMP study of Section 5.3:
    1 means private L2s (the E6000 base case); 8 with an 8-processor
    machine means all processors share a single L2.
    """

    n_procs: int = 1
    l1i: CacheConfig = field(
        default_factory=lambda: CacheConfig(size=kb(16), assoc=2, block=32, name="L1I")
    )
    l1d: CacheConfig = field(
        default_factory=lambda: CacheConfig(size=kb(16), assoc=2, block=32, name="L1D")
    )
    l2: CacheConfig = field(
        default_factory=lambda: CacheConfig(size=mb(1), assoc=4, block=64, name="L2")
    )
    procs_per_l2: int = 1
    latencies: LatencyBook = E6000_LATENCIES
    clock_hz: int = 248_000_000

    def __post_init__(self) -> None:
        if self.n_procs <= 0:
            raise ConfigError(f"n_procs must be positive, got {self.n_procs}")
        if self.procs_per_l2 <= 0:
            raise ConfigError(f"procs_per_l2 must be positive, got {self.procs_per_l2}")
        if self.n_procs % self.procs_per_l2 != 0:
            raise ConfigError(
                f"n_procs ({self.n_procs}) must be divisible by procs_per_l2 "
                f"({self.procs_per_l2})"
            )

    @property
    def n_l2_caches(self) -> int:
        return self.n_procs // self.procs_per_l2

    def with_procs(self, n_procs: int) -> "MachineConfig":
        return replace(self, n_procs=n_procs)

    def with_shared_l2(self, procs_per_l2: int) -> "MachineConfig":
        return replace(self, procs_per_l2=procs_per_l2)

    def describe(self) -> str:
        sharing = (
            "private L2s"
            if self.procs_per_l2 == 1
            else f"{self.procs_per_l2} procs per shared L2"
        )
        return (
            f"{self.n_procs}-processor machine, {sharing}; "
            f"{self.l1i.describe()}; {self.l1d.describe()}; {self.l2.describe()}"
        )


def e6000_machine(n_procs: int = 16) -> MachineConfig:
    """The paper's Sun E6000: up to 16 UltraSPARC II, private 1 MB L2s."""
    return MachineConfig(n_procs=n_procs)


def cmp_machine(n_procs: int = 8, procs_per_l2: int = 8) -> MachineConfig:
    """A chip-multiprocessor configuration for the shared-cache study."""
    return MachineConfig(n_procs=n_procs, procs_per_l2=procs_per_l2)


def next_generation_machine(n_procs: int = 16) -> MachineConfig:
    """An UltraSPARC-III-generation machine (Section 7's "further study").

    Faster clock, bigger L1s, an 8 MB off-chip L2 — but memory gets
    *relatively* slower (more cycles per access at the higher clock),
    which shifts weight from capacity misses to coherence latency.
    """
    from repro.memsys.latency import LatencyBook

    return MachineConfig(
        n_procs=n_procs,
        l1i=CacheConfig(size=kb(32), assoc=4, block=32, name="L1I"),
        l1d=CacheConfig(size=kb(64), assoc=4, block=32, name="L1D"),
        l2=CacheConfig(size=mb(8), assoc=8, block=64, name="L2"),
        latencies=LatencyBook(
            l1_hit=2, l2_hit=15, memory=330, cache_to_cache=460,
            tlb_miss=80, store_buffer_drain=4,
        ),
        clock_hz=900_000_000,
    )


#: Default machine preset matching the paper's measurement platform.
E6000 = e6000_machine()
