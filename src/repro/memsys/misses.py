"""Miss classification.

The paper distinguishes misses satisfied from memory from misses
satisfied by another processor's cache (sharing/coherence misses), and
discusses cold vs. capacity effects when comparing shared and private
L2 caches (Section 5.3).  We classify every L2 miss into the classic
three-way taxonomy:

- ``COLD`` — the block was never resident in this cache before;
- ``COHERENCE`` — the block was resident but was invalidated by
  another processor's write (the miss would not have occurred on a
  uniprocessor);
- ``REPLACEMENT`` — capacity/conflict: the block was evicted by this
  cache's own replacement decisions.
"""

from __future__ import annotations

from enum import Enum


class MissKind(Enum):
    """Why an access missed."""

    COLD = "cold"
    COHERENCE = "coherence"
    REPLACEMENT = "replacement"


class MissClassifier:
    """Tracks per-cache history needed to classify misses.

    One classifier serves one cache.  ``ever_held`` grows with the
    footprint of the measurement interval (bounded by the number of
    distinct blocks referenced, not by the simulated machine's RAM).
    """

    def __init__(self) -> None:
        self._ever_held: set[int] = set()
        self._invalidated: set[int] = set()

    def note_insert(self, block: int) -> None:
        """Record that the cache now holds ``block``."""
        self._ever_held.add(block)
        self._invalidated.discard(block)

    def note_coherence_invalidation(self, block: int) -> None:
        """Record that a remote write invalidated ``block`` here."""
        self._invalidated.add(block)

    def note_eviction(self, block: int) -> None:
        """Record a local replacement decision for ``block``."""
        self._invalidated.discard(block)

    def classify(self, block: int) -> MissKind:
        """Classify a miss on ``block`` (call before note_insert)."""
        if block not in self._ever_held:
            return MissKind.COLD
        if block in self._invalidated:
            return MissKind.COHERENCE
        return MissKind.REPLACEMENT
