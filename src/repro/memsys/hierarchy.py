"""Multi-processor memory hierarchy.

Composes private split L1 caches, private or shared L2 caches, and the
MOSI snooping bus into the machine the paper measures.  The shared-L2
configurations reproduce the chip-multiprocessor study of Section 5.3:
with ``procs_per_l2 = 8`` on an 8-processor machine, all processors
share one 1 MB L2 and coherence misses between them disappear (their
sharing becomes cache hits), at the cost of capacity/conflict misses.

Inclusion is maintained the way snooping SMPs do it: when the bus
invalidates an L2 line, the corresponding L1 lines above that L2 are
shot down through the bus's invalidation hook.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import obs as _obs
from repro.memsys.config import MachineConfig
from repro.errors import ConfigError
from repro.memsys.block import IFETCH, INSTRUCTIONS_PER_IFETCH, STORE
from repro.memsys.cache import SetAssociativeCache
from repro.memsys.coherence import FILL_C2C, FILL_HIT, FILL_MEM, FILL_UPGRADE, MOSIBus
from repro.memsys import fastpath as _fastpath
from repro.memsys import fastpath_coherence as _fastpath_coherence
from repro.memsys import invariants as _invariants


@dataclass
class ProcessorStats:
    """Per-processor reference and miss counters."""

    instructions: int = 0
    ifetches: int = 0
    loads: int = 0
    stores: int = 0
    l1i_accesses: int = 0
    l1i_misses: int = 0
    l1d_accesses: int = 0
    l1d_misses: int = 0
    l2_hits: int = 0
    l2_misses: int = 0
    l2_data_misses: int = 0
    l2_instr_misses: int = 0
    l2_load_hits: int = 0
    l2_load_misses: int = 0
    c2c_fills: int = 0
    c2c_load_fills: int = 0
    mem_fills: int = 0
    mem_load_fills: int = 0
    upgrades: int = 0

    @property
    def data_refs(self) -> int:
        return self.loads + self.stores

    @property
    def c2c_ratio(self) -> float:
        return self.c2c_fills / self.l2_misses if self.l2_misses else 0.0

    def mpki(self, misses: int) -> float:
        """Misses per 1000 instructions for this processor."""
        return 1000.0 * misses / self.instructions if self.instructions else 0.0


class MemoryHierarchy:
    """The simulated machine's full cache hierarchy.

    Usage: build from a :class:`MachineConfig`, then either call
    ``access(cpu, ref)`` per reference or hand per-processor traces to
    ``run_trace`` which interleaves them in round-robin quanta (the
    deterministic stand-in for an OS scheduler time-slicing the bus).
    """

    def __init__(
        self,
        machine: MachineConfig,
        protocol: str = "mosi",
        include_l1: bool = True,
        track_lines: bool = True,
        check_invariants: bool | None = None,
        check_sample: int | None = None,
    ) -> None:
        self.machine = machine
        self.include_l1 = include_l1
        n = machine.n_procs
        self.proc_stats = [ProcessorStats() for _ in range(n)]
        self._l2_of_cpu = [cpu // machine.procs_per_l2 for cpu in range(n)]
        self._l1i = [SetAssociativeCache(machine.l1i) for _ in range(n)]
        self._l1d = [SetAssociativeCache(machine.l1d) for _ in range(n)]
        l2_caches = [
            SetAssociativeCache(machine.l2) for _ in range(machine.n_l2_caches)
        ]
        self.bus = MOSIBus(
            l2_caches,
            protocol=protocol,
            track_lines=track_lines,
            on_invalidate=self._shoot_down_l1 if include_l1 else None,
        )
        self._l1i_bits = machine.l1i.block_bits
        self._l1d_bits = machine.l1d.block_bits
        self._l2_bits = machine.l2.block_bits
        if include_l1 and (
            self._l2_bits < self._l1i_bits or self._l2_bits < self._l1d_bits
        ):
            raise ConfigError("L2 blocks must be at least as large as L1 blocks")
        # Processors in each L2 cluster, for L1 shoot-downs.
        self._cluster_cpus = [
            [cpu for cpu in range(n) if self._l2_of_cpu[cpu] == cid]
            for cid in range(machine.n_l2_caches)
        ]
        # Opt-in runtime invariant checking (JMMW_CHECK=1 or explicit).
        # When off — the default — the hot path is untouched; when on,
        # the instance attribute shadows the class method so every
        # access lands in the checker's sampled verification.
        if check_invariants is None:
            check_invariants = _invariants.checking_enabled()
        self.checker: _invariants.InvariantChecker | None = None
        if check_invariants:
            period = (
                check_sample if check_sample is not None
                else _invariants.sample_period()
            )
            self.checker = _invariants.InvariantChecker(self, sample_every=period)
            self.access = self._checked_access  # type: ignore[method-assign]

    # -- per-reference path -----------------------------------------------

    def access(self, cpu: int, ref: int) -> str:
        """Route one encoded reference through the hierarchy.

        Returns where it was satisfied: ``"l1"``, or the bus fill
        source (``"hit"`` = L2 hit, ``"upgrade"``, ``"c2c"``, ``"mem"``).
        """
        kind = ref & 0x3
        addr = ref >> 2
        stats = self.proc_stats[cpu]
        if kind == IFETCH:
            stats.ifetches += 1
            stats.instructions += INSTRUCTIONS_PER_IFETCH
            if self.include_l1:
                stats.l1i_accesses += 1
                if self._l1i[cpu].access(addr >> self._l1i_bits, write=False):
                    return "l1"
                stats.l1i_misses += 1
            return self._l2_access(cpu, addr, write=False, instr=True)
        if kind == STORE:
            # The UltraSPARC II L1 data cache is write-through with
            # no-write-allocate: a store updates the L1 copy if
            # present but always propagates to the L2/bus, where
            # coherence acts on it.
            stats.stores += 1
            if self.include_l1:
                l1d = self._l1d[cpu]
                block = addr >> self._l1d_bits
                if l1d.probe(block) is not None:
                    l1d.touch(block)
            return self._l2_access(cpu, addr, write=True)
        stats.loads += 1
        if self.include_l1:
            stats.l1d_accesses += 1
            if self._l1d[cpu].access(addr >> self._l1d_bits, write=False):
                return "l1"
            stats.l1d_misses += 1
        return self._l2_access(cpu, addr, write=False)

    def _l2_access(self, cpu: int, addr: int, write: bool, instr: bool = False) -> str:
        stats = self.proc_stats[cpu]
        cache_id = self._l2_of_cpu[cpu]
        block = addr >> self._l2_bits
        if write:
            source = self.bus.write(cache_id, block)
        else:
            source = self.bus.read(cache_id, block)
        load = not write and not instr
        if source == FILL_HIT:
            stats.l2_hits += 1
            if load:
                stats.l2_load_hits += 1
        elif source == FILL_UPGRADE:
            stats.upgrades += 1
        elif source == FILL_C2C:
            stats.l2_misses += 1
            stats.c2c_fills += 1
            if load:
                stats.c2c_load_fills += 1
        elif source == FILL_MEM:
            stats.l2_misses += 1
            stats.mem_fills += 1
            if load:
                stats.mem_load_fills += 1
        if source in (FILL_C2C, FILL_MEM):
            if instr:
                stats.l2_instr_misses += 1
            else:
                stats.l2_data_misses += 1
                if load:
                    stats.l2_load_misses += 1
        return source

    def _checked_access(self, cpu: int, ref: int) -> str:
        """``access`` with the invariant checker observing every reference."""
        source = MemoryHierarchy.access(self, cpu, ref)
        self.checker.record(cpu, ref, source)
        return source

    def check_invariants(self) -> None:
        """Run the full invariant suite now, regardless of sampling.

        Raises :class:`~repro.errors.InvariantViolation` on corruption.
        Works whether or not the hierarchy was built with checking
        enabled (a one-shot checker is created on demand).
        """
        checker = self.checker or _invariants.InvariantChecker(self, sample_every=1)
        checker.check()

    def _shoot_down_l1(self, cache_id: int, block: int) -> None:
        """Invalidate L1 copies above an invalidated L2 line."""
        base = block << self._l2_bits
        for cpu in self._cluster_cpus[cache_id]:
            ratio_i = 1 << (self._l2_bits - self._l1i_bits)
            first_i = base >> self._l1i_bits
            l1i = self._l1i[cpu]
            for sub in range(ratio_i):
                l1i.remove(first_i + sub)
            ratio_d = 1 << (self._l2_bits - self._l1d_bits)
            first_d = base >> self._l1d_bits
            l1d = self._l1d[cpu]
            for sub in range(ratio_d):
                l1d.remove(first_d + sub)

    # -- trace replay -------------------------------------------------------

    def reset_stats(self) -> None:
        """Zero processor and bus counters, keeping caches warm."""
        self.proc_stats = [ProcessorStats() for _ in range(self.machine.n_procs)]
        self.bus.reset_stats()

    def run_trace(
        self,
        per_cpu_traces: list[list[int]],
        quantum: int = 64,
        warmup_fraction: float = 0.0,
        fastpath: bool | None = None,
    ) -> None:
        """Interleave per-processor traces round-robin and replay them.

        Each processor consumes up to ``quantum`` references per turn;
        processors whose traces are exhausted drop out.  Deterministic
        given the traces, so the variability methodology perturbs the
        workload generation rather than the interleaving.

        With ``warmup_fraction`` > 0, the first fraction of each trace
        fills the caches and is then discarded from the counters, so
        reported rates are steady-state.

        ``fastpath`` controls the compiled coherence kernel
        (:mod:`repro.memsys.fastpath_coherence`): ``None`` follows the
        global ``JMMW_FASTPATH`` switch, ``False`` forces the scalar
        reference loop.  The kernel only engages on a cold hierarchy
        with no invariant checker attached; whenever it declines, the
        scalar loop below runs and produces the identical state.

        ``per_cpu_traces`` may also be a
        :class:`~repro.memsys.stream.TraceStream`: chunks are then
        replayed as they arrive, carrying machine state across chunk
        boundaries, with final state and counters bit-identical to
        materializing the stream first.
        """
        from repro.memsys import stream as _stream

        if isinstance(per_cpu_traces, _stream.TraceStream):
            _stream.run_trace_stream(
                self, per_cpu_traces,
                quantum=quantum, warmup_fraction=warmup_fraction,
                fastpath=fastpath,
            )
            return
        if len(per_cpu_traces) != self.machine.n_procs:
            raise ConfigError(
                f"expected {self.machine.n_procs} traces, got {len(per_cpu_traces)}"
            )
        if quantum <= 0:
            raise ConfigError("quantum must be positive")
        if not 0.0 <= warmup_fraction < 1.0:
            raise ConfigError("warmup_fraction must be in [0, 1)")
        if fastpath is None:
            fastpath = _fastpath.fastpath_enabled()
        if (
            fastpath
            and self.checker is None
            and _fastpath_coherence.run_trace_kernel(
                self, per_cpu_traces, quantum, warmup_fraction
            )
        ):
            return
        # Workloads hand over uint64 arrays; the per-reference loop
        # below runs much faster over Python ints than numpy scalars.
        per_cpu_traces = [
            t.tolist() if isinstance(t, np.ndarray) else t for t in per_cpu_traces
        ]
        if warmup_fraction > 0.0:
            warm = [t[: int(len(t) * warmup_fraction)] for t in per_cpu_traces]
            rest = [t[int(len(t) * warmup_fraction) :] for t in per_cpu_traces]
            self.run_trace(warm, quantum=quantum, fastpath=False)
            self.reset_stats()
            self.run_trace(rest, quantum=quantum, fastpath=False)
            return
        # Observability is published per leaf replay (the warmup branch
        # above recurses into two leaves around a reset_stats, so the
        # bus-stat deltas below sum to the whole run's activity).
        bus_before = self._bus_counter_snapshot() if _obs.enabled() else None
        access = self.access
        positions = [0] * len(per_cpu_traces)
        live = [cpu for cpu, t in enumerate(per_cpu_traces) if t]
        with _obs.span(
            "memsys/replay",
            refs=sum(len(t) for t in per_cpu_traces),
            procs=len(per_cpu_traces),
        ):
            while live:
                next_live = []
                for cpu in live:
                    trace = per_cpu_traces[cpu]
                    pos = positions[cpu]
                    end = min(pos + quantum, len(trace))
                    for i in range(pos, end):
                        access(cpu, trace[i])
                    positions[cpu] = end
                    if end < len(trace):
                        next_live.append(cpu)
                live = next_live
        if bus_before is not None:
            self._publish_bus_counters(bus_before, sum(positions))
        if self.checker is not None:
            # One guaranteed full check per replay, so corruption that
            # slipped between samples still fails the run that made it.
            self.checker.check()

    #: Bus counters published to the observability registry per replay.
    _OBS_BUS_FIELDS = (
        "bus_reads", "bus_read_exclusives", "upgrades", "silent_upgrades",
        "c2c_transfers", "memory_fetches", "writebacks", "invalidations",
    )

    def _bus_counter_snapshot(self) -> tuple[int, ...]:
        stats = self.bus.stats
        return tuple(getattr(stats, name) for name in self._OBS_BUS_FIELDS)

    def _publish_bus_counters(self, before: tuple[int, ...], refs: int) -> None:
        """Publish this replay's bus-transaction deltas (obs enabled)."""
        stats = self.bus.stats
        for name, base in zip(self._OBS_BUS_FIELDS, before):
            delta = getattr(stats, name) - base
            if delta:
                _obs.incr(f"memsys/bus/{name}", delta)
        _obs.incr("memsys/replay/refs", refs)

    # -- aggregates -----------------------------------------------------------

    @property
    def total_instructions(self) -> int:
        return sum(s.instructions for s in self.proc_stats)

    @property
    def total_l2_misses(self) -> int:
        return sum(s.l2_misses for s in self.proc_stats)

    @property
    def total_c2c_fills(self) -> int:
        return sum(s.c2c_fills for s in self.proc_stats)

    def c2c_ratio(self) -> float:
        """Machine-wide fraction of L2 misses hitting another cache."""
        misses = self.total_l2_misses
        return self.total_c2c_fills / misses if misses else 0.0

    def data_mpki(self) -> float:
        """Machine-wide L2 *data* misses per 1000 instructions.

        This is the Figure 16 metric: each L2 miss is attributed to
        the reference kind that caused it, and instruction fills are
        excluded.
        """
        instr = self.total_instructions
        if not instr:
            return 0.0
        data_misses = sum(s.l2_data_misses for s in self.proc_stats)
        return 1000.0 * data_misses / instr
