"""Chunked trace streams: constant-memory generation and replay.

Every replay consumer in this package historically required the whole
trace materialized as one ``uint64`` array per processor.  That bounds
scenario size by memory and forces generation to finish before replay
starts.  This module introduces the streaming plane:

- :class:`TraceStream` — per-processor iterators of fixed-size
  ``uint64`` chunks plus *declared* lengths, built from a materialized
  bundle (:meth:`TraceStream.from_bundle`), from chunked generation
  (:meth:`TraceStream.from_workload`), or from raw iterators;
- :func:`run_trace_stream` — the windowed round-robin scheduler behind
  :meth:`repro.memsys.hierarchy.MemoryHierarchy.run_trace` when it is
  handed a stream: cache/bus/classifier state is carried across chunk
  boundaries either by the persistent compiled-kernel machine
  (:class:`repro.memsys.fastpath_coherence.KernelSession`) or simply by
  the live Python hierarchy;
- :class:`MissCurveAccumulator` — the vectorized miss-curve sweep
  reformulated with explicit carried state: per-(geometry, set) LRU
  contents are extracted after each chunk
  (:func:`lru_carried_state`) and replayed as a synthetic prefix in
  front of the next chunk, which reproduces every per-access miss flag
  exactly (Mattson inclusion: a block's hit/miss depends only on the
  distinct same-set blocks since its previous access, and the carried
  prefix preserves both membership and recency order);
- :class:`StackAccumulator` — the mergeable stack-distance
  formulation: the carried state is the full LRU stack (distinct
  blocks in last-access order, O(footprint) not O(refs)), and
  per-chunk histograms merge by addition into the exact one-shot
  histogram.

Everything here is bit-identical to the materialized path — enforced
by ``tests/memsys/test_stream_parity.py`` and the ``stream`` rows of
:data:`repro.obs.diffcheck.FIGURE_DIFF_CONFIGS` — and falls back to it
via ``stream=False`` / ``--no-stream`` / ``JMMW_STREAM=0``.
"""

from __future__ import annotations

import os
from typing import Iterable, Iterator, Sequence

import numpy as np

from repro import obs as _obs
from repro.errors import ConfigError, SimulationError
from repro.memsys.block import IFETCH, INSTRUCTIONS_PER_IFETCH
from repro.memsys.config import CacheConfig
from repro.memsys.fastpath import fastpath_enabled, lru_miss_mask, stack_distances

#: Environment switch: set to ``0``/``false`` to make every
#: stream-aware consumer (figure drivers, sweeps) take the materialized
#: path.  The harness cache key records the resolved value.
STREAM_ENV = "JMMW_STREAM"

#: Environment override for the default chunk size, in references.
CHUNK_ENV = "JMMW_STREAM_CHUNK"

#: Default chunk size: 1 M references (8 MB per chunk).
DEFAULT_CHUNK_REFS = 1_000_000

_forced: bool | None = None


def set_stream(enabled: bool | None) -> None:
    """Process-wide override (CLI ``--stream``/``--no-stream``)."""
    global _forced
    _forced = enabled


def stream_enabled() -> bool:
    """Whether stream-aware consumers replay chunked traces."""
    if _forced is not None:
        return _forced
    return os.environ.get(STREAM_ENV, "1").lower() not in ("0", "false", "no")


def stream_chunk_refs() -> int:
    """Chunk size in references (``JMMW_STREAM_CHUNK``, min 1)."""
    raw = os.environ.get(CHUNK_ENV, "").strip()
    if not raw:
        return DEFAULT_CHUNK_REFS
    try:
        return max(1, int(raw))
    except ValueError:
        return DEFAULT_CHUNK_REFS


#: Seeded-defect knob (tests only): when set, the streaming
#: accumulators discard their carried state at every chunk boundary.
#: The parity suite flips this to prove it fails loudly on exactly the
#: class of bug the carried-state contract exists to prevent.
_drop_carried_state = False


def set_carried_state_defect(enabled: bool) -> None:
    """Enable/disable the carried-state-drop defect (tests only)."""
    global _drop_carried_state
    _drop_carried_state = bool(enabled)


# -- chunk plumbing ----------------------------------------------------------


class ChunkCursor:
    """Buffered reader over one processor's chunk iterator.

    ``take(n)`` returns exactly ``n`` references, buffering partial
    chunks across calls; running short of the declared length raises
    :class:`~repro.errors.SimulationError` (a producer bug must never
    silently truncate a replay).
    """

    def __init__(self, chunks: Iterable[np.ndarray]) -> None:
        self._chunks = iter(chunks)
        self._parts: list[np.ndarray] = []
        self._avail = 0

    def take(self, n: int) -> np.ndarray:
        if n < 0:
            raise ConfigError("cannot take a negative number of references")
        while self._avail < n:
            try:
                chunk = next(self._chunks)
            except StopIteration:
                raise SimulationError(
                    f"chunk stream ended early: needed {n} more references, "
                    f"only {self._avail} buffered (producer under-delivered "
                    "its declared length)"
                ) from None
            arr = np.asarray(chunk, dtype=np.uint64)
            if arr.ndim != 1:
                raise ConfigError(
                    f"chunks must be one-dimensional, got shape {arr.shape}"
                )
            if arr.size:
                self._parts.append(arr)
                self._avail += int(arr.size)
        if n == 0:
            return np.empty(0, dtype=np.uint64)
        parts = []
        need = n
        while need:
            head = self._parts[0]
            if head.size <= need:
                parts.append(head)
                self._parts.pop(0)
                need -= int(head.size)
            else:
                parts.append(head[:need])
                self._parts[0] = head[need:]
                need = 0
        self._avail -= n
        return parts[0] if len(parts) == 1 else np.concatenate(parts)


class TraceStream:
    """Per-processor chunked reference streams with declared lengths.

    The declared ``lengths`` stand in for ``len(trace)`` everywhere the
    materialized path needs it up front (warmup splits, round-robin
    drop-out), so replay schedules are computed before a single chunk
    is generated.  Streams are one-shot: :meth:`cursors` (or
    :meth:`chunks_merged`) may be consumed once.
    """

    def __init__(
        self,
        lengths: Sequence[int],
        per_cpu_chunks: Sequence[Iterable[np.ndarray]],
        workload: str = "",
    ) -> None:
        self.lengths = [int(n) for n in lengths]
        if any(n < 0 for n in self.lengths):
            raise ConfigError("declared lengths must be non-negative")
        self._chunks = list(per_cpu_chunks)
        if len(self._chunks) != len(self.lengths):
            raise ConfigError(
                f"{len(self.lengths)} declared lengths but "
                f"{len(self._chunks)} chunk iterators"
            )
        self.workload = workload
        self._consumed = False

    @property
    def n_procs(self) -> int:
        return len(self.lengths)

    @property
    def total_refs(self) -> int:
        return sum(self.lengths)

    def _claim(self) -> None:
        if self._consumed:
            raise SimulationError(
                "trace stream already consumed (streams are one-shot; "
                "build a fresh one to replay again)"
            )
        self._consumed = True

    def cursors(self) -> list[ChunkCursor]:
        """One buffered cursor per processor (consumes the stream)."""
        self._claim()
        return [ChunkCursor(chunks) for chunks in self._chunks]

    def chunks_merged(self) -> Iterator[np.ndarray]:
        """All processors' chunks in processor order (consumes the stream).

        Concatenating the yielded chunks reproduces
        ``TraceBundle.merged()`` exactly.
        """
        self._claim()
        for chunks in self._chunks:
            yield from chunks

    @classmethod
    def from_arrays(
        cls,
        per_cpu: Sequence[np.ndarray],
        chunk_refs: int | None = None,
        workload: str = "",
    ) -> "TraceStream":
        """Chunked views over already-materialized per-CPU arrays."""
        chunk = chunk_refs if chunk_refs is not None else stream_chunk_refs()
        if chunk < 1:
            raise ConfigError("chunk_refs must be >= 1")
        arrays = [np.asarray(t, dtype=np.uint64) for t in per_cpu]

        def views(arr: np.ndarray) -> Iterator[np.ndarray]:
            for start in range(0, int(arr.size), chunk):
                yield arr[start : start + chunk]

        return cls(
            [int(a.size) for a in arrays],
            [views(a) for a in arrays],
            workload=workload,
        )

    @classmethod
    def from_bundle(
        cls, bundle, chunk_refs: int | None = None
    ) -> "TraceStream":
        """Chunked views over a :class:`~repro.workloads.base.TraceBundle`."""
        return cls.from_arrays(
            bundle.per_cpu, chunk_refs=chunk_refs, workload=bundle.workload
        )

    @classmethod
    def from_workload(
        cls, workload, n_procs: int, sim, rng_factory, chunk_refs: int | None = None
    ) -> "TraceStream":
        """Chunked *generation*: no full trace ever materializes."""
        chunk = chunk_refs if chunk_refs is not None else stream_chunk_refs()
        chunked = workload.generate_chunks(n_procs, sim, rng_factory, chunk)
        return cls(chunked.lengths, chunked.per_cpu, workload=workload.name)


# -- carried LRU state -------------------------------------------------------


def lru_carried_state(
    blocks: np.ndarray,
    set_mask: int,
    assoc: int,
    prefix: np.ndarray | None = None,
) -> np.ndarray:
    """Exact post-replay cache contents, as a synthetic access prefix.

    Returns, for the true-LRU cache defined by ``(set_mask, assoc)``
    after replaying ``prefix`` (the previous carried state) followed by
    ``blocks``, every resident block — per set the ``assoc`` most
    recently used distinct blocks — ordered set-by-set from LRU to MRU.
    Replaying the result in front of the next chunk reconstructs each
    set's exact membership *and* recency order, so
    :func:`repro.memsys.fastpath.lru_miss_mask` over
    ``concat(carried, chunk)`` produces the chunk's exact miss flags
    (cross-set interleaving is irrelevant: LRU state is per set).
    """
    if assoc <= 0:
        raise ConfigError(f"assoc must be positive, got {assoc}")
    blocks = np.asarray(blocks, dtype=np.uint64)
    if prefix is not None and prefix.size:
        seq = np.concatenate([np.asarray(prefix, dtype=np.uint64), blocks])
    else:
        seq = blocks
    if seq.size == 0:
        return np.empty(0, dtype=np.uint64)
    # Distinct blocks, most-recent-first: first occurrences in the
    # reversed sequence are last occurrences in the original.
    rev = seq[::-1]
    _, first = np.unique(rev, return_index=True)
    recent = rev[np.sort(first)]
    sets = (recent & np.uint64(set_mask)).astype(np.int64)
    order = np.argsort(sets, kind="stable")  # per set, still recency order
    sorted_sets = sets[order]
    k = int(recent.size)
    arange = np.arange(k, dtype=np.int64)
    new_group = np.empty(k, dtype=bool)
    new_group[0] = True
    new_group[1:] = sorted_sets[1:] != sorted_sets[:-1]
    group_start = np.maximum.accumulate(np.where(new_group, arange, 0))
    rank = arange - group_start  # 0 = most recently used within its set
    keep = rank < assoc
    kept_recent = recent[order][keep]
    kept_rank = rank[keep]
    kept_sets = sorted_sets[keep]
    # Emit LRU -> MRU per set (highest rank first), so replaying the
    # prefix in order restores the recency stack exactly.
    return kept_recent[np.lexsort((-kept_rank, kept_sets))]


# -- streaming miss curves ---------------------------------------------------


class MissCurveAccumulator:
    """Streaming, carried-state equivalent of
    :func:`repro.memsys.fastpath.miss_curve_points`.

    Feed packed-``uint64`` chunks in trace order; :meth:`points`
    returns miss-curve points bit-identical to the one-shot vectorized
    sweep (and therefore to the scalar reference).  Warm/measured
    accounting follows the global warmup split computed from the
    *declared* total, so the split lands on the same reference
    regardless of chunking.
    """

    def __init__(
        self,
        configs: list[CacheConfig],
        kind: str,
        total_refs: int,
        warmup_fraction: float = 0.0,
    ) -> None:
        if kind not in ("instr", "data"):
            raise ConfigError(f"kind must be 'instr' or 'data', got {kind!r}")
        if not 0.0 <= warmup_fraction < 1.0:
            raise ConfigError("warmup_fraction must be in [0, 1)")
        if total_refs < 0:
            raise ConfigError("total_refs must be non-negative")
        self.configs = list(configs)
        self.kind = kind
        self.total_refs = int(total_refs)
        self.split = int(total_refs * warmup_fraction)
        self.pos = 0
        self._ifetch_total = 0
        self._ifetch_warm = 0
        # accesses, misses, warm_accesses, warm_misses per config.
        self._acc = [[0, 0, 0, 0] for _ in self.configs]
        self._carried: list[np.ndarray | None] = [None] * len(self.configs)
        self._groups: dict[int, list[int]] = {}
        for i, cfg in enumerate(self.configs):
            self._groups.setdefault(cfg.block_bits, []).append(i)

    def feed(self, chunk: np.ndarray) -> None:
        refs = np.asarray(chunk, dtype=np.uint64)
        n = int(refs.size)
        if n == 0:
            return
        if self.pos + n > self.total_refs:
            raise SimulationError(
                f"chunk overruns the declared trace length: {self.pos} + {n} "
                f"> {self.total_refs}"
            )
        is_ifetch = (refs & np.uint64(0x3)) == IFETCH
        split_local = min(max(self.split - self.pos, 0), n)
        self._ifetch_total += int(np.count_nonzero(is_ifetch))
        if split_local:
            self._ifetch_warm += int(np.count_nonzero(is_ifetch[:split_local]))
        mask = is_ifetch if self.kind == "instr" else ~is_ifetch
        addrs = (refs >> np.uint64(2))[mask]
        class_pos = np.flatnonzero(mask)
        class_before = int(np.searchsorted(class_pos, split_local, side="left"))
        for block_bits, indices in self._groups.items():
            blocks = addrs >> np.uint64(block_bits)
            for i in indices:
                cfg = self.configs[i]
                prefix = self._carried[i]
                if prefix is not None and prefix.size:
                    seq = np.concatenate([prefix, blocks])
                    skip = int(prefix.size)
                else:
                    seq = blocks
                    skip = 0
                miss = lru_miss_mask(seq, cfg.set_mask, cfg.assoc)[skip:]
                acc = self._acc[i]
                acc[0] += int(blocks.size)
                acc[1] += int(np.count_nonzero(miss))
                acc[2] += class_before
                acc[3] += int(np.count_nonzero(miss[:class_before]))
                if _drop_carried_state:
                    self._carried[i] = None
                else:
                    self._carried[i] = lru_carried_state(
                        blocks, cfg.set_mask, cfg.assoc, prefix=prefix
                    )
        self.pos += n

    def points(self):
        """Post-warmup miss-curve points; the stream must be complete."""
        from repro.memsys.multisim import MissCurvePoint

        if self.pos != self.total_refs:
            raise SimulationError(
                f"stream incomplete: {self.pos} of {self.total_refs} declared "
                "references fed"
            )
        instr = (self._ifetch_total - self._ifetch_warm) * INSTRUCTIONS_PER_IFETCH
        points = []
        for cfg, (accesses, misses, warm_acc, warm_miss) in zip(
            self.configs, self._acc
        ):
            post_accesses = accesses - warm_acc
            post_misses = misses - warm_miss
            mpki = 1000.0 * post_misses / instr if instr else 0.0
            points.append(
                MissCurvePoint(
                    size=cfg.size,
                    accesses=post_accesses,
                    misses=post_misses,
                    mpki=mpki,
                )
            )
        return points


def simulate_miss_curve_stream(
    chunks: Iterable[np.ndarray],
    total_refs: int,
    sizes: list[int],
    kind: str,
    assoc: int = 4,
    block: int = 64,
    warmup_fraction: float = 0.2,
    fastpath: bool | None = None,
):
    """Streaming equivalent of
    :func:`repro.memsys.multisim.simulate_miss_curve`.

    ``chunks`` yields the trace in order (e.g.
    :meth:`TraceStream.chunks_merged`); ``total_refs`` is the declared
    length, which places the warmup split.  Points are bit-identical to
    materializing the trace and calling ``simulate_miss_curve`` — on
    both the vectorized path (carried-LRU-state accumulator) and the
    scalar reference path (the scalar simulator is already
    incremental; the split chunk is cut at the exact boundary).
    """
    if not 0.0 <= warmup_fraction < 1.0:
        raise ConfigError("warmup_fraction must be in [0, 1)")
    from repro.memsys.multisim import MultiConfigSimulator

    configs = [
        CacheConfig(size=s, assoc=assoc, block=block, name=f"{kind}-{s}")
        for s in sizes
    ]
    use_fast = fastpath_enabled() if fastpath is None else fastpath
    split = int(total_refs * warmup_fraction)
    with _obs.span(
        "memsys/miss_curve",
        kind=kind, points=len(sizes), refs=total_refs, fastpath=use_fast,
        streamed=True,
    ):
        if use_fast:
            acc = MissCurveAccumulator(
                configs, kind, total_refs, warmup_fraction=warmup_fraction
            )
            for chunk in chunks:
                acc.feed(chunk)
            return acc.points()
        _obs.incr("memsys/multisim/scalar_replays")
        sim = MultiConfigSimulator(
            configs, kind=kind, warmup_fraction=warmup_fraction
        )
        pos = 0
        if split == 0:
            sim.mark_warm()
        for chunk in chunks:
            arr = np.asarray(chunk, dtype=np.uint64)
            if pos < split <= pos + int(arr.size):
                cut = split - pos
                sim.replay(arr[:cut])
                sim.mark_warm()
                sim.replay(arr[cut:])
            else:
                sim.replay(arr)
            pos += int(arr.size)
        if pos != total_refs:
            raise SimulationError(
                f"stream incomplete: {pos} of {total_refs} declared "
                "references fed"
            )
        return sim.results()


# -- mergeable stack distances -----------------------------------------------


class StackAccumulator:
    """Mergeable LRU stack-distance histogram over chunked block streams.

    The carried state is the full LRU stack — every distinct block seen
    so far, ordered by last access (oldest first).  Prepending it to
    the next chunk makes every in-chunk distance exact: the distinct
    blocks between an access and its previous occurrence are precisely
    the blocks whose last occurrence falls in that window, and the
    stack preserves last-occurrence order.  Memory is O(footprint),
    independent of trace length, and per-chunk histograms merge by
    addition into exactly the one-shot histogram.
    """

    #: Histogram bucket for cold (first-touch) accesses.
    COLD = -1

    def __init__(self) -> None:
        self._stack = np.empty(0, dtype=np.int64)
        self._hist: dict[int, int] = {}
        self.n_accesses = 0

    def feed(self, blocks) -> None:
        arr = np.asarray(blocks, dtype=np.int64)
        if arr.ndim != 1:
            raise ConfigError(f"blocks must be one-dimensional, got {arr.shape}")
        if arr.size == 0:
            return
        self.n_accesses += int(arr.size)
        prefix = self._stack
        if _drop_carried_state:
            prefix = prefix[:0]
        seq = np.concatenate([prefix, arr]) if prefix.size else arr
        dist = stack_distances(seq)[prefix.size :]
        values, counts = np.unique(dist, return_counts=True)
        for value, count in zip(values.tolist(), counts.tolist()):
            self._hist[value] = self._hist.get(value, 0) + count
        rev = seq[::-1]
        _, first = np.unique(rev, return_index=True)
        self._stack = rev[np.sort(first)][::-1]  # oldest -> newest

    def histogram(self) -> dict[int, int]:
        """``{distance: count}``; COLD (-1) counts first touches."""
        return dict(self._hist)


# -- streamed hierarchy replay -----------------------------------------------


def _window_refs(quantum: int) -> int:
    """Kernel window size: the chunk knob, rounded to quanta."""
    return max(quantum, (stream_chunk_refs() // quantum) * quantum)


def run_trace_stream(
    hierarchy,
    stream: TraceStream,
    quantum: int = 64,
    warmup_fraction: float = 0.0,
    fastpath: bool | None = None,
) -> None:
    """Replay a :class:`TraceStream` through a hierarchy, windowed.

    Bit-identical to materializing the stream and calling
    :meth:`~repro.memsys.hierarchy.MemoryHierarchy.run_trace`: the
    round-robin schedule (including warmup phases and drop-out of
    exhausted processors) is computed from the declared lengths, and
    machine state is carried across chunk boundaries by the live
    hierarchy (scalar path) or the persistent compiled-kernel machine
    (:class:`repro.memsys.fastpath_coherence.KernelSession`).

    Unlike the materialized kernel path — which can silently fall back
    to the scalar loop — a kernel failure mid-stream raises
    :class:`~repro.errors.SimulationError`: chunks are one-shot, so
    there is nothing left to replay scalar.
    """
    from repro.memsys import fastpath_coherence as _fc

    if stream.n_procs != hierarchy.machine.n_procs:
        raise ConfigError(
            f"expected {hierarchy.machine.n_procs} streams, got {stream.n_procs}"
        )
    if quantum <= 0:
        raise ConfigError("quantum must be positive")
    if not 0.0 <= warmup_fraction < 1.0:
        raise ConfigError("warmup_fraction must be in [0, 1)")
    if fastpath is None:
        fastpath = fastpath_enabled()
    cursors = stream.cursors()
    lengths = stream.lengths
    if warmup_fraction > 0.0:
        splits = [int(n * warmup_fraction) for n in lengths]
        phases = [splits, [n - s for n, s in zip(lengths, splits)]]
    else:
        phases = [lengths]
    session = None
    if fastpath and hierarchy.checker is None:
        session = _fc.KernelSession.begin(hierarchy)
    try:
        for index, budgets in enumerate(phases):
            if index > 0:
                if session is not None:
                    session.reset_stats()
                else:
                    hierarchy.reset_stats()
            bus_before = None
            if _obs.enabled():
                bus_before = (
                    session.bus_counters() if session is not None
                    else hierarchy._bus_counter_snapshot()
                )
            with _obs.span(
                "memsys/replay", refs=sum(budgets), procs=stream.n_procs,
            ):
                if session is not None:
                    _kernel_phase(session, cursors, budgets, quantum)
                else:
                    _scalar_phase(hierarchy, cursors, budgets, quantum)
            if bus_before is not None:
                if session is not None:
                    session.publish_bus_delta(bus_before, sum(budgets))
                else:
                    hierarchy._publish_bus_counters(bus_before, sum(budgets))
        if session is not None:
            session.finish()
            session = None
    finally:
        if session is not None:
            session.abort()
    if hierarchy.checker is not None:
        hierarchy.checker.check()


def _scalar_phase(hierarchy, cursors, budgets, quantum: int) -> None:
    """One warmup/measurement phase through the scalar access loop.

    Mirrors the materialized round-robin exactly: each live processor
    plays up to a quantum per turn and drops out when its budget is
    spent, in processor order.
    """
    access = hierarchy.access
    remaining = list(budgets)
    live = [cpu for cpu, n in enumerate(remaining) if n > 0]
    while live:
        next_live = []
        for cpu in live:
            n = min(quantum, remaining[cpu])
            for ref in cursors[cpu].take(n).tolist():
                access(cpu, ref)
            remaining[cpu] -= n
            if remaining[cpu] > 0:
                next_live.append(cpu)
        live = next_live


def _kernel_phase(session, cursors, budgets, quantum: int) -> None:
    """One phase through the persistent kernel machine, windowed.

    While every live processor has at least a quantum left, a window
    (a common multiple of the quantum, capped by the chunk knob) is
    pulled per processor and replayed in one kernel call — the
    kernel's internal round-robin over equal-length windows
    concatenates to the global schedule.  The ragged tail (some
    processor under a quantum from exhaustion) is replayed one
    round at a time, which reproduces drop-out exactly.
    """
    n_procs = len(budgets)
    window = _window_refs(quantum)
    remaining = list(budgets)
    live = [cpu for cpu, n in enumerate(remaining) if n > 0]
    while live:
        floor = min(remaining[cpu] for cpu in live)
        arrays: list[np.ndarray | None] = [None] * n_procs
        if floor >= quantum:
            take = min(window, floor - (floor % quantum))
            for cpu in live:
                arrays[cpu] = cursors[cpu].take(take)
                remaining[cpu] -= take
        else:
            # Tail round: every live processor plays one (possibly
            # short) turn; the shortest drops out afterwards.
            for cpu in live:
                turn = min(quantum, remaining[cpu])
                arrays[cpu] = cursors[cpu].take(turn)
                remaining[cpu] -= turn
        session.run(arrays, quantum)
        live = [cpu for cpu in live if remaining[cpu] > 0]
