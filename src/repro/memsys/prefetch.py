"""Next-line instruction prefetching (extension study).

The paper's instruction-side result (Figure 12) motivates the obvious
hardware response: sequential code streams prefetch well.  This module
adds a tagged next-line prefetcher in front of a cache so the
extension bench can quantify how much of ECperf's intermediate-size
instruction miss rate simple prefetching recovers — and confirm it
does much less for the pointer-chasing data side.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.memsys.cache import SetAssociativeCache


@dataclass
class PrefetchStats:
    """Prefetcher effectiveness counters."""

    demand_accesses: int = 0
    demand_misses: int = 0
    prefetches_issued: int = 0
    prefetch_hits: int = 0  # demand accesses satisfied by a prefetch

    @property
    def miss_ratio(self) -> float:
        if self.demand_accesses == 0:
            return 0.0
        return self.demand_misses / self.demand_accesses

    @property
    def accuracy(self) -> float:
        """Fraction of issued prefetches that were eventually used."""
        if self.prefetches_issued == 0:
            return 0.0
        return self.prefetch_hits / self.prefetches_issued


class NextLinePrefetcher:
    """Tagged next-line prefetcher wrapping a cache.

    On a demand miss for block ``b``, block ``b+1`` is prefetched into
    the cache and tagged; a later demand access that hits a tagged
    block counts as a prefetch hit (and, being tagged, triggers the
    next prefetch — the classic tagged scheme that keeps a sequential
    stream ahead of the fetch unit).
    """

    def __init__(self, cache: SetAssociativeCache, degree: int = 1) -> None:
        if degree < 1:
            raise ConfigError("prefetch degree must be >= 1")
        self.cache = cache
        self.degree = degree
        self.stats = PrefetchStats()
        self._tagged: set[int] = set()

    def access(self, block: int, write: bool = False) -> bool:
        """One demand access; returns True on (demand) hit."""
        stats = self.stats
        stats.demand_accesses += 1
        hit = self.cache.access(block, write)
        trigger = False
        if hit:
            if block in self._tagged:
                self._tagged.discard(block)
                stats.prefetch_hits += 1
                trigger = True  # tagged hit: keep running ahead
        else:
            stats.demand_misses += 1
            trigger = True
        if trigger:
            for step in range(1, self.degree + 1):
                self._prefetch(block + step)
        return hit

    def _prefetch(self, block: int) -> None:
        if self.cache.contains(block):
            return
        self.stats.prefetches_issued += 1
        victim = self.cache.insert(block, 0)  # CLEAN
        self._tagged.add(block)
        if victim is not None:
            self._tagged.discard(victim[0])
