"""Runtime model invariants: catch simulator corruption while it runs.

A coherence simulator that silently corrupts its own state does not
crash — it publishes wrong curves.  This module makes the MOSI model
self-checking: an opt-in :class:`InvariantChecker` hooks into
:meth:`repro.memsys.hierarchy.MemoryHierarchy.access` and, on a
sampled schedule, verifies that

- **MOSI legality** holds: at most one MODIFIED copy of a block and
  it is exclusive, at most one OWNED copy, EXCLUSIVE truly exclusive,
  and the bus's ``holders`` mirror exactly matches cache contents;
- **L1/L2 inclusion** holds: every L1-resident block's L2 line is
  resident in that processor's L2 (maintained via invalidation and
  eviction shoot-downs);
- **stats conservation** holds: ``hits + misses == refs`` at each
  level, ``c2c_fills + mem_fills == l2_misses``,
  ``c2c_fills <= l2_misses``, and bus totals equal per-processor sums.

A violation raises :class:`~repro.errors.InvariantViolation` carrying
a diagnostic dump — the per-cache coherence state of the offending
block plus a ring buffer of the last K accesses — so corruption is
debuggable at the reference that exposed it, not thousands of
references later.

Enablement: pass ``check_invariants=True`` to ``MemoryHierarchy``, use
``jmmw ... --check-invariants``, or set ``JMMW_CHECK=1`` in the
environment (worker processes inherit it).  Sampling
(``JMMW_CHECK_SAMPLE``, default every 8192 accesses, plus one full
check at the end of every trace replay) keeps the overhead bounded:
recording an access is one ring-buffer append; the full state scan is
amortized across the sample period.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Iterable

import os

from repro.errors import ConfigError, InvariantViolation
from repro.memsys.block import IFETCH, INSTRUCTIONS_PER_IFETCH, LOAD, STORE
from repro.memsys.coherence import State

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.memsys.hierarchy import MemoryHierarchy

#: Environment switch: any of 1/true/yes/on enables checking.
CHECK_ENV = "JMMW_CHECK"

#: Environment override for the sampling period (accesses per check).
SAMPLE_ENV = "JMMW_CHECK_SAMPLE"

#: Default accesses between full state checks.
DEFAULT_SAMPLE = 8192

#: Default ring-buffer depth (most recent accesses kept for the dump).
DEFAULT_HISTORY = 64

_KIND_NAMES = {IFETCH: "ifetch", LOAD: "load", STORE: "store"}


def checking_enabled() -> bool:
    """Whether ``JMMW_CHECK`` asks for invariant checking."""
    return os.environ.get(CHECK_ENV, "").strip().lower() in ("1", "true", "yes", "on")


def sample_period() -> int:
    """Sampling period from ``JMMW_CHECK_SAMPLE`` (default 8192)."""
    raw = os.environ.get(SAMPLE_ENV, "").strip()
    if not raw:
        return DEFAULT_SAMPLE
    try:
        period = int(raw)
    except ValueError:
        raise ConfigError(f"{SAMPLE_ENV} must be an integer, got {raw!r}") from None
    if period < 1:
        raise ConfigError(f"{SAMPLE_ENV} must be >= 1, got {period}")
    return period


class InvariantChecker:
    """Sampled runtime verification of a :class:`MemoryHierarchy`.

    ``sample_every=1`` checks after every access (exhaustive, for
    tests and post-mortems); larger periods bound the cost for long
    campaigns.  Every recorded access lands in a ring buffer of depth
    ``history`` regardless of sampling, so a violation's dump always
    shows the most recent traffic.
    """

    def __init__(
        self,
        hierarchy: "MemoryHierarchy",
        sample_every: int = DEFAULT_SAMPLE,
        history: int = DEFAULT_HISTORY,
    ) -> None:
        if sample_every < 1:
            raise ConfigError(f"sample_every must be >= 1, got {sample_every}")
        if history < 1:
            raise ConfigError(f"history must be >= 1, got {history}")
        self.hierarchy = hierarchy
        self.sample_every = sample_every
        self._ring: deque[tuple[int, int, int, int, str]] = deque(maxlen=history)
        self._seen = 0
        self.checks_run = 0

    # -- hot path ---------------------------------------------------------

    def record(self, cpu: int, ref: int, outcome: str) -> None:
        """Note one access; run the full check every ``sample_every``."""
        self._seen += 1
        self._ring.append((self._seen, cpu, ref & 0x3, ref >> 2, outcome))
        if self._seen % self.sample_every == 0:
            self.check()

    # -- full check -------------------------------------------------------

    def check(self) -> None:
        """Verify every invariant now; raises :class:`InvariantViolation`."""
        self.checks_run += 1
        self._check_coherence()
        self._check_inclusion()
        self._check_conservation()

    def _fail(self, message: str, block: int | None = None) -> None:
        raise InvariantViolation(message, self._dump(block))

    # -- MOSI legality ----------------------------------------------------

    def _check_coherence(self) -> None:
        bus = self.hierarchy.bus
        seen: dict[int, list[tuple[int, State]]] = {}
        for cid, cache in enumerate(bus.caches):
            for block in cache.resident_blocks():
                seen.setdefault(block, []).append((cid, cache.probe(block)))
        for block, copies in seen.items():
            states = [state for _, state in copies]
            if states.count(State.MODIFIED) > 1:
                self._fail(f"block {block:#x}: two MODIFIED copies", block)
            if State.MODIFIED in states and len(copies) > 1:
                self._fail(f"block {block:#x}: MODIFIED copy is not exclusive", block)
            if State.EXCLUSIVE in states and len(copies) > 1:
                self._fail(f"block {block:#x}: EXCLUSIVE copy is not exclusive", block)
            if states.count(State.OWNED) > 1:
                self._fail(f"block {block:#x}: two OWNED copies", block)
            mirror = bus.holder_ids(block)
            actual = frozenset(cid for cid, _ in copies)
            if mirror != actual:
                self._fail(
                    f"block {block:#x}: holders mirror {sorted(mirror)} != "
                    f"resident caches {sorted(actual)}",
                    block,
                )
        for block in bus.mirrored_blocks():
            if block not in seen:
                self._fail(
                    f"block {block:#x}: holders mirror says "
                    f"{sorted(bus.holder_ids(block))}, but no cache holds it",
                    block,
                )

    # -- L1/L2 inclusion --------------------------------------------------

    def _check_inclusion(self) -> None:
        h = self.hierarchy
        if not h.include_l1:
            return
        shift_i = h._l2_bits - h._l1i_bits
        shift_d = h._l2_bits - h._l1d_bits
        for cpu in range(h.machine.n_procs):
            l2 = h.bus.caches[h._l2_of_cpu[cpu]]
            self._check_l1_subset(
                cpu, "L1I", h._l1i[cpu].resident_blocks(), shift_i, l2
            )
            self._check_l1_subset(
                cpu, "L1D", h._l1d[cpu].resident_blocks(), shift_d, l2
            )

    def _check_l1_subset(
        self, cpu: int, label: str, blocks: Iterable[int], shift: int, l2
    ) -> None:
        for l1_block in blocks:
            l2_block = l1_block >> shift
            if not l2.contains(l2_block):
                self._fail(
                    f"inclusion: cpu {cpu} {label} holds L1 block "
                    f"{l1_block:#x} but its L2 line {l2_block:#x} is not "
                    f"resident",
                    l2_block,
                )

    # -- stats conservation ------------------------------------------------

    def _check_conservation(self) -> None:
        h = self.hierarchy
        for cpu, s in enumerate(h.proc_stats):
            where = f"cpu {cpu}"
            if s.instructions != s.ifetches * INSTRUCTIONS_PER_IFETCH:
                self._fail(
                    f"{where}: instructions ({s.instructions}) != ifetches "
                    f"({s.ifetches}) * {INSTRUCTIONS_PER_IFETCH}"
                )
            if h.include_l1:
                if s.l1i_accesses != s.ifetches:
                    self._fail(
                        f"{where}: l1i_accesses ({s.l1i_accesses}) != "
                        f"ifetches ({s.ifetches})"
                    )
                if s.l1d_accesses != s.loads:
                    self._fail(
                        f"{where}: l1d_accesses ({s.l1d_accesses}) != "
                        f"loads ({s.loads})"
                    )
                if s.l1i_misses > s.l1i_accesses or s.l1d_misses > s.l1d_accesses:
                    self._fail(f"{where}: more L1 misses than L1 accesses")
                l2_refs = s.l1i_misses + s.l1d_misses + s.stores
            else:
                l2_refs = s.ifetches + s.loads + s.stores
            if s.l2_hits + s.upgrades + s.l2_misses != l2_refs:
                self._fail(
                    f"{where}: l2 hits ({s.l2_hits}) + upgrades ({s.upgrades}) "
                    f"+ misses ({s.l2_misses}) != L2 refs ({l2_refs}) — "
                    f"hits + misses must equal refs"
                )
            if s.c2c_fills + s.mem_fills != s.l2_misses:
                self._fail(
                    f"{where}: c2c_fills ({s.c2c_fills}) + mem_fills "
                    f"({s.mem_fills}) != l2_misses ({s.l2_misses})"
                )
            if s.c2c_fills > s.l2_misses:
                self._fail(
                    f"{where}: c2c_fills ({s.c2c_fills}) > l2_misses "
                    f"({s.l2_misses})"
                )
            if s.l2_instr_misses + s.l2_data_misses != s.l2_misses:
                self._fail(
                    f"{where}: instr ({s.l2_instr_misses}) + data "
                    f"({s.l2_data_misses}) miss split != l2_misses "
                    f"({s.l2_misses})"
                )
            if s.c2c_load_fills > s.c2c_fills or s.mem_load_fills > s.mem_fills:
                self._fail(f"{where}: load-fill counters exceed their totals")
            if s.l2_load_hits > s.l2_hits or s.l2_load_misses > s.l2_data_misses:
                self._fail(f"{where}: load hit/miss counters exceed their totals")
        bus = h.bus
        if bus.stats.total_misses != h.total_l2_misses:
            self._fail(
                f"bus total misses ({bus.stats.total_misses}) != sum of "
                f"per-processor l2_misses ({h.total_l2_misses})"
            )
        if bus.stats.c2c_transfers != h.total_c2c_fills:
            self._fail(
                f"bus c2c transfers ({bus.stats.c2c_transfers}) != sum of "
                f"per-processor c2c_fills ({h.total_c2c_fills})"
            )
        for name in ("writebacks", "upgrades"):
            bus_total = getattr(bus.stats, name)
            side_sum = sum(getattr(side, name) for side in bus.cache_stats)
            if bus_total != side_sum:
                self._fail(
                    f"bus {name} ({bus_total}) != sum of per-cache "
                    f"{name} ({side_sum})"
                )
        side_invalidations = sum(
            side.invalidations_received for side in bus.cache_stats
        )
        if bus.stats.invalidations != side_invalidations:
            self._fail(
                f"bus invalidations ({bus.stats.invalidations}) != sum of "
                f"per-cache invalidations_received ({side_invalidations})"
            )
        side_misses = sum(side.misses for side in bus.cache_stats)
        if bus.stats.total_misses != side_misses:
            self._fail(
                f"bus total misses ({bus.stats.total_misses}) != sum of "
                f"per-cache misses ({side_misses})"
            )
        for cid, side in enumerate(bus.cache_stats):
            if side.c2c_fills + side.mem_fills != side.misses:
                self._fail(
                    f"L2[{cid}]: c2c ({side.c2c_fills}) + mem "
                    f"({side.mem_fills}) fills != misses ({side.misses})"
                )
            if side.misses > side.accesses:
                self._fail(
                    f"L2[{cid}]: misses ({side.misses}) > accesses "
                    f"({side.accesses})"
                )

    # -- diagnostics -------------------------------------------------------

    def _dump(self, block: int | None) -> str:
        """Per-cache state for ``block`` plus the recent-access ring."""
        h = self.hierarchy
        lines = []
        if block is not None:
            lines.append(f"-- state of block {block:#x} --")
            for cid, cache in enumerate(h.bus.caches):
                state = cache.probe(block)
                name = state.name if isinstance(state, State) else repr(state)
                lines.append(
                    f"  L2[{cid}]: {'absent' if state is None else name}"
                )
            lines.append(
                f"  holders mirror: {sorted(h.bus.holder_ids(block)) or '{}'}"
            )
            if h.include_l1:
                shift_i = h._l2_bits - h._l1i_bits
                shift_d = h._l2_bits - h._l1d_bits
                residents = []
                for cpu in range(h.machine.n_procs):
                    held = []
                    if any(
                        b >> shift_i == block for b in h._l1i[cpu].resident_blocks()
                    ):
                        held.append("L1I")
                    if any(
                        b >> shift_d == block for b in h._l1d[cpu].resident_blocks()
                    ):
                        held.append("L1D")
                    if held:
                        residents.append(f"cpu{cpu}:{'+'.join(held)}")
                lines.append(f"  L1 residency: {', '.join(residents) or 'none'}")
        lines.append(
            f"-- last {len(self._ring)} of {self._seen} recorded accesses --"
        )
        for seq, cpu, kind, addr, outcome in self._ring:
            kind_name = _KIND_NAMES.get(kind, f"kind{kind}")
            lines.append(
                f"  #{seq} cpu{cpu} {kind_name} addr={addr:#x} -> {outcome}"
            )
        return "\n".join(lines)
