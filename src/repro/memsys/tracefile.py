"""Trace persistence.

Figure sweeps replay the same trace through many configurations; a
saved trace also makes a run exactly repeatable across processes (the
Simics workflow the paper used kept checkpoint+trace artifacts for the
same reason).  Traces are stored as compressed numpy archives: one
``uint64`` array per processor plus instruction counts and metadata.

Loading validates everything — archive integrity, header shape, array
presence, dtype and dimensionality — and raises
:class:`~repro.errors.TraceFileError` (an :class:`AnalysisError`) on
any defect, so a truncated or hand-mangled file fails loudly at load
time instead of surfacing later as a silently wrong curve.
"""

from __future__ import annotations

import json
import zipfile
import zlib
from pathlib import Path
from typing import TYPE_CHECKING

import numpy as np

from repro.errors import TraceFileError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.workloads.base import TraceBundle

#: Format marker for forward compatibility.
FORMAT_VERSION = 1


def save_trace(bundle: TraceBundle, path: str | Path) -> Path:
    """Write a trace bundle to ``path`` (``.npz`` appended if missing)."""
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(path.suffix + ".npz")
    arrays = {
        f"cpu{idx}": np.asarray(trace, dtype=np.uint64)
        for idx, trace in enumerate(bundle.per_cpu)
    }
    header = {
        "version": FORMAT_VERSION,
        "workload": bundle.workload,
        "n_procs": bundle.n_procs,
        "instructions": bundle.instructions,
        "meta": _jsonable(bundle.meta),
    }
    arrays["header"] = np.frombuffer(
        json.dumps(header).encode("utf-8"), dtype=np.uint8
    )
    np.savez_compressed(path, **arrays)
    return path


def load_trace(path: str | Path) -> TraceBundle:
    """Read and validate a trace bundle written by :func:`save_trace`.

    Raises :class:`~repro.errors.TraceFileError` for a missing or
    unreadable archive, a truncated member, a malformed header, or an
    array with the wrong dtype/shape — never a bare numpy/zipfile
    exception.
    """
    from repro.workloads.base import TraceBundle

    path = Path(path)
    if not path.exists():
        raise TraceFileError(f"trace file {path} does not exist")
    try:
        archive = np.load(path)
    except (OSError, ValueError, EOFError, zipfile.BadZipFile) as exc:
        raise TraceFileError(f"{path}: unreadable trace archive ({exc})") from exc
    with archive as data:
        header = _read_header(data, path)
        n_procs = header["n_procs"]
        instructions = header["instructions"]
        if not isinstance(n_procs, int) or n_procs < 0:
            raise TraceFileError(f"{path}: invalid n_procs {n_procs!r}")
        if not isinstance(instructions, list) or len(instructions) != n_procs:
            raise TraceFileError(
                f"{path}: instructions length "
                f"{len(instructions) if isinstance(instructions, list) else '?'} "
                f"does not match n_procs {n_procs}"
            )
        per_cpu = [_read_stream(data, idx, path) for idx in range(n_procs)]
    return TraceBundle(
        workload=header["workload"],
        per_cpu=per_cpu,
        instructions=list(instructions),
        meta=dict(header["meta"]),
    )


def _read_header(data, path: Path) -> dict:
    if "header" not in data:
        raise TraceFileError(f"{path} is not a repro trace file")
    try:
        header = json.loads(bytes(data["header"].tobytes()).decode("utf-8"))
    except (zipfile.BadZipFile, zlib.error, OSError, EOFError, ValueError) as exc:
        raise TraceFileError(f"{path}: corrupt trace header ({exc})") from exc
    if not isinstance(header, dict):
        raise TraceFileError(f"{path}: trace header is not an object")
    if header.get("version") != FORMAT_VERSION:
        raise TraceFileError(
            f"{path}: unsupported trace format version {header.get('version')}"
        )
    missing = [k for k in ("workload", "n_procs", "instructions", "meta") if k not in header]
    if missing:
        raise TraceFileError(f"{path}: trace header missing {missing}")
    return header


def _read_stream(data, idx: int, path: Path) -> np.ndarray:
    name = f"cpu{idx}"
    if name not in data:
        raise TraceFileError(f"{path}: missing per-CPU array {name!r}")
    try:
        # Decompression happens here; a truncated archive member
        # surfaces as a zip/zlib error on this read.
        array = data[name]
    except (zipfile.BadZipFile, zlib.error, OSError, EOFError, ValueError) as exc:
        raise TraceFileError(f"{path}: truncated or corrupt array {name!r} ({exc})") from exc
    if array.dtype != np.uint64:
        raise TraceFileError(
            f"{path}: array {name!r} has dtype {array.dtype}, expected uint64"
        )
    if array.ndim != 1:
        raise TraceFileError(
            f"{path}: array {name!r} has shape {array.shape}, expected 1-D"
        )
    return array


def _jsonable(meta: dict) -> dict:
    """Keep only JSON-serializable metadata entries."""
    out = {}
    for key, value in meta.items():
        try:
            json.dumps(value)
        except TypeError:
            value = str(value)
        out[key] = value
    return out
