"""Trace persistence.

Figure sweeps replay the same trace through many configurations; a
saved trace also makes a run exactly repeatable across processes (the
Simics workflow the paper used kept checkpoint+trace artifacts for the
same reason).  Traces are stored as compressed numpy archives: one
``uint64`` array per processor plus instruction counts and metadata.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import TYPE_CHECKING

import numpy as np

from repro.errors import AnalysisError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.workloads.base import TraceBundle

#: Format marker for forward compatibility.
FORMAT_VERSION = 1


def save_trace(bundle: TraceBundle, path: str | Path) -> Path:
    """Write a trace bundle to ``path`` (``.npz`` appended if missing)."""
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(path.suffix + ".npz")
    arrays = {
        f"cpu{idx}": np.asarray(trace, dtype=np.uint64)
        for idx, trace in enumerate(bundle.per_cpu)
    }
    header = {
        "version": FORMAT_VERSION,
        "workload": bundle.workload,
        "n_procs": bundle.n_procs,
        "instructions": bundle.instructions,
        "meta": _jsonable(bundle.meta),
    }
    arrays["header"] = np.frombuffer(
        json.dumps(header).encode("utf-8"), dtype=np.uint8
    )
    np.savez_compressed(path, **arrays)
    return path


def load_trace(path: str | Path) -> TraceBundle:
    """Read a trace bundle written by :func:`save_trace`."""
    from repro.workloads.base import TraceBundle

    path = Path(path)
    if not path.exists():
        raise AnalysisError(f"trace file {path} does not exist")
    with np.load(path) as data:
        if "header" not in data:
            raise AnalysisError(f"{path} is not a repro trace file")
        header = json.loads(bytes(data["header"].tobytes()).decode("utf-8"))
        if header.get("version") != FORMAT_VERSION:
            raise AnalysisError(
                f"{path}: unsupported trace format version {header.get('version')}"
            )
        # Arrays go straight into the bundle — no per-element int()
        # round-trip; TraceBundle holds uint64 arrays natively.
        per_cpu = [
            np.asarray(data[f"cpu{idx}"], dtype=np.uint64)
            for idx in range(header["n_procs"])
        ]
    return TraceBundle(
        workload=header["workload"],
        per_cpu=per_cpu,
        instructions=list(header["instructions"]),
        meta=dict(header["meta"]),
    )


def _jsonable(meta: dict) -> dict:
    """Keep only JSON-serializable metadata entries."""
    out = {}
    for key, value in meta.items():
        try:
            json.dumps(value)
        except TypeError:
            value = str(value)
        out[key] = value
    return out
