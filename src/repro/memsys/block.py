"""Memory-reference encoding shared by workload generators and simulators.

A reference is a single Python int: ``(byte_address << 2) | kind``.
Packing into ints (rather than tuples or dataclasses) matters: traces
run to millions of references and the cache simulators are pure Python,
so every object allocation per reference would dominate runtime.

Workloads emit instruction fetches at 32-byte granularity (one fetch
per half of a 64-byte line) and data references at their natural byte
addresses.  Cache simulators derive block addresses by shifting, which
lets one generated trace be replayed against any block size >= 32 B.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Reference kinds (2-bit field).
IFETCH = 0
LOAD = 1
STORE = 2

_KIND_NAMES = {IFETCH: "ifetch", LOAD: "load", STORE: "store"}

#: Granularity at which sequential instruction fetches are emitted.
IFETCH_BYTES = 32
#: Instructions represented by one emitted instruction fetch (4-byte SPARC
#: instructions, 32-byte fetch granularity).
INSTRUCTIONS_PER_IFETCH = IFETCH_BYTES // 4


def encode_ref(addr: int, kind: int) -> int:
    """Pack a byte address and a reference kind into one int."""
    if kind not in _KIND_NAMES:
        raise ValueError(f"invalid reference kind {kind}")
    if addr < 0:
        raise ValueError(f"negative address {addr:#x}")
    return (addr << 2) | kind


def decode_ref(ref: int) -> tuple[int, int]:
    """Unpack an encoded reference into ``(byte_address, kind)``."""
    return ref >> 2, ref & 0x3


def is_write_kind(kind: int) -> bool:
    """True for stores."""
    return kind == STORE


def is_data_kind(kind: int) -> bool:
    """True for loads and stores, False for instruction fetches."""
    return kind != IFETCH


def kind_name(kind: int) -> str:
    """Human-readable name of a reference kind."""
    return _KIND_NAMES[kind]


@dataclass(frozen=True)
class Ref:
    """Decoded reference, for tests and debugging (not the hot path)."""

    addr: int
    kind: int

    @classmethod
    def from_encoded(cls, ref: int) -> "Ref":
        addr, kind = decode_ref(ref)
        return cls(addr, kind)

    @property
    def is_write(self) -> bool:
        return is_write_kind(self.kind)

    @property
    def is_data(self) -> bool:
        return is_data_kind(self.kind)

    def encoded(self) -> int:
        return encode_ref(self.addr, self.kind)

    def block(self, block_bits: int) -> int:
        """Block address for a cache with 2**block_bits byte lines."""
        return self.addr >> block_bits
