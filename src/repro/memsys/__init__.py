"""Multiprocessor memory-system simulator.

This subpackage is the reproduction's stand-in for the paper's
measurement substrate (Sun E6000 hardware counters + Simics with the
Sumo cache simulator).  It provides:

- :mod:`repro.memsys.block` — reference encoding shared by workloads
  and simulators;
- :mod:`repro.memsys.cache` — set-associative LRU caches;
- :mod:`repro.memsys.coherence` — a MOSI snooping bus with
  cache-to-cache ("snoop copyback") accounting;
- :mod:`repro.memsys.hierarchy` — multi-processor hierarchies with
  private or shared L2 caches (the chip-multiprocessor study);
- :mod:`repro.memsys.multisim` — replay one trace through many cache
  geometries (miss-rate-vs-size curves);
- :mod:`repro.memsys.invariants` — opt-in sampled runtime checking of
  MOSI legality, L1/L2 inclusion, and stats conservation
  (``JMMW_CHECK=1`` or ``--check-invariants``);
- :mod:`repro.memsys.stackdist` — LRU stack-distance profiling;
- :mod:`repro.memsys.storebuffer`, :mod:`repro.memsys.tlb` — the store
  buffer and TLB models behind the stall decomposition and the ISM
  large-page result.
"""

from repro.memsys.block import (
    IFETCH,
    LOAD,
    STORE,
    Ref,
    decode_ref,
    encode_ref,
    is_data_kind,
    is_write_kind,
)
from repro.memsys.cache import CacheStats, SetAssociativeCache
from repro.memsys.coherence import CoherenceStats, MOSIBus, State
from repro.memsys.hierarchy import MemoryHierarchy, ProcessorStats
from repro.memsys.invariants import InvariantChecker, checking_enabled, sample_period
from repro.memsys.latency import E6000_LATENCIES, LatencyBook
from repro.memsys.misses import MissKind
from repro.memsys.multisim import MultiConfigSimulator, simulate_miss_curve
from repro.memsys.stackdist import StackDistanceProfiler
from repro.memsys.bandwidth import BusModel
from repro.memsys.prefetch import NextLinePrefetcher, PrefetchStats
from repro.memsys.storebuffer import StoreBuffer
from repro.memsys.tracefile import load_trace, save_trace
from repro.memsys.tlb import Tlb

__all__ = [
    "IFETCH",
    "LOAD",
    "STORE",
    "Ref",
    "decode_ref",
    "encode_ref",
    "is_data_kind",
    "is_write_kind",
    "CacheStats",
    "SetAssociativeCache",
    "CoherenceStats",
    "MOSIBus",
    "State",
    "MemoryHierarchy",
    "ProcessorStats",
    "InvariantChecker",
    "checking_enabled",
    "sample_period",
    "E6000_LATENCIES",
    "LatencyBook",
    "MissKind",
    "MultiConfigSimulator",
    "simulate_miss_curve",
    "StackDistanceProfiler",
    "StoreBuffer",
    "Tlb",
    "BusModel",
    "NextLinePrefetcher",
    "PrefetchStats",
    "load_trace",
    "save_trace",
]
