"""Servlet-engine code regions.

ECperf's presentation logic is implemented with Java Servlets hosted
in the application server's web container (Section 2.4).  Servlet
dispatch, session handling and response generation add to the middle
tier's instruction footprint on every driver interaction.
"""

from __future__ import annotations

from repro.appserver.container import CodeRegionSpec


def servlet_regions() -> list[CodeRegionSpec]:
    """Hot code of the servlet engine and ECperf's servlets."""
    return [
        CodeRegionSpec("servlet.http_parse", instructions=5_000, hotness=7.0),
        CodeRegionSpec("servlet.dispatch", instructions=5_000, hotness=7.0),
        CodeRegionSpec("servlet.session", instructions=5_000, hotness=5.0),
        CodeRegionSpec("servlet.orders_page", instructions=6_000, hotness=5.0),
        CodeRegionSpec("servlet.mfg_page", instructions=5_000, hotness=4.0),
        CodeRegionSpec("servlet.response_gen", instructions=5_000, hotness=6.0),
    ]
