"""The application server assembled: pools, cache and code inventory.

A single :class:`ApplicationServer` instance hosts the entire middle
tier, as in the paper ("In all of our experiments, a single instance
of the application server hosted the entire middle tier",
Section 2.5).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.appserver.beancache import BeanCache
from repro.appserver.connpool import ConnectionPool
from repro.appserver.threadpool import ThreadPool
from repro.errors import ConfigError


@dataclass(frozen=True)
class CodeRegionSpec:
    """A body of hot code: name, size in instructions, relative hotness.

    ``hotness`` is the region's relative execution weight; the workload
    layer turns the weights into a fetch mix (hot container loops are
    fetched far more often than cold error paths).
    """

    name: str
    instructions: int
    hotness: float = 1.0

    def __post_init__(self) -> None:
        if self.instructions <= 0:
            raise ConfigError(f"{self.name}: instructions must be positive")
        if self.hotness <= 0:
            raise ConfigError(f"{self.name}: hotness must be positive")

    @property
    def code_bytes(self) -> int:
        """Region size in bytes (4-byte SPARC instructions)."""
        return self.instructions * 4


class ApplicationServer:
    """Middle-tier server: thread pool + connection pool + bean cache.

    Pool sizes default to a well-tuned configuration for an 8-way
    machine; the scaling study re-tunes them per processor count the
    way the paper does ("we tuned the application server for each
    processor set size", Section 3.2).
    """

    def __init__(
        self,
        thread_pool_size: int = 24,
        connection_pool_size: int = 16,
        bean_cache: BeanCache | None = None,
    ) -> None:
        self.threads = ThreadPool(thread_pool_size)
        self.connections = ConnectionPool(connection_pool_size)
        self.bean_cache = bean_cache if bean_cache is not None else BeanCache()

    @classmethod
    def tuned_for(cls, n_procs: int) -> "ApplicationServer":
        """A configuration tuned for ``n_procs`` application processors.

        Roughly 3 worker threads and 2 database connections per
        processor keeps processors busy without over-threading.
        """
        if n_procs <= 0:
            raise ConfigError("n_procs must be positive")
        return cls(
            thread_pool_size=max(4, 3 * n_procs),
            connection_pool_size=max(2, 2 * n_procs),
        )

    def code_footprint_bytes(self, regions: list[CodeRegionSpec]) -> int:
        """Total code bytes across ``regions``."""
        return sum(r.code_bytes for r in regions)
