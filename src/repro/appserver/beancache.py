"""Object-level bean cache.

"Object-level caching increases performance in the application server
because instances of components (beans) are cached in memory, thereby
reducing database queries and memory allocations" (Section 2.5).  The
paper attributes ECperf's *super-linear* speedup from 1 to 8
processors to constructive interference in this cache: one thread
re-uses objects fetched by another, so instructions per BBop *fall*
as concurrency rises (Section 4.4).

The cache plays three roles in the reproduction:

- *addresses*: cached beans live in one shared region, and every
  thread reads them — the wide, flat sharing that spreads ECperf's
  cache-to-cache transfers over half its touched lines (Figure 14);
- *hit model*: the hit rate rises with the number of concurrent
  threads (constructive interference), feeding the path-length model;
- *capacity*: the cache is fixed-size, which is why ECperf's mid-tier
  memory footprint stays flat as the injection rate scales
  (Figure 11).
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import ConfigError

#: Where the bean cache lives in the simulated address space.
BEAN_CACHE_BASE = 0x0C00_0000


class BeanCache:
    """Fixed-capacity cache of entity-bean instances."""

    def __init__(
        self,
        capacity_beans: int = 65536,
        bean_size: int = 256,
        base_addr: int = BEAN_CACHE_BASE,
        single_thread_hit_rate: float = 0.55,
        max_hit_rate: float = 0.88,
        interference_scale: float = 4.0,
    ) -> None:
        if capacity_beans <= 0 or bean_size <= 0:
            raise ConfigError("capacity and bean size must be positive")
        if not 0.0 <= single_thread_hit_rate <= max_hit_rate <= 1.0:
            raise ConfigError("require 0 <= single_thread_hit_rate <= max_hit_rate <= 1")
        if interference_scale <= 0:
            raise ConfigError("interference_scale must be positive")
        self.capacity_beans = capacity_beans
        self.bean_size = bean_size
        self.base_addr = base_addr
        self.single_thread_hit_rate = single_thread_hit_rate
        self.max_hit_rate = max_hit_rate
        self.interference_scale = interference_scale
        self.lookups = 0
        self.hits = 0

    @property
    def footprint_bytes(self) -> int:
        """Resident size of the cache — fixed regardless of load."""
        return self.capacity_beans * self.bean_size

    def hit_rate(self, n_threads: int) -> float:
        """Hit rate with ``n_threads`` concurrent workers.

        Constructive interference: additional threads populate the
        cache with beans other threads then reuse.  Saturating
        exponential between the single-thread and asymptotic rates.

        >>> cache = BeanCache()
        >>> cache.hit_rate(1) == cache.single_thread_hit_rate
        True
        >>> cache.hit_rate(8) > cache.hit_rate(2)
        True
        """
        if n_threads <= 0:
            raise ConfigError("n_threads must be positive")
        span = self.max_hit_rate - self.single_thread_hit_rate
        gain = 1.0 - math.exp(-(n_threads - 1) / self.interference_scale)
        return self.single_thread_hit_rate + span * gain

    def bean_addr(self, bean_index: int) -> int:
        """Address of a cached bean instance."""
        if not 0 <= bean_index < self.capacity_beans:
            raise ConfigError(f"bean index {bean_index} out of range")
        return self.base_addr + bean_index * self.bean_size

    def lookup(self, rng: np.random.Generator, n_threads: int) -> int | None:
        """One cache lookup: returns a bean address on hit, None on miss.

        Hit addresses are spread over the whole cache region with mild
        popularity skew — many warm lines rather than a few scorching
        ones, matching ECperf's flat C2C distribution.
        """
        self.lookups += 1
        if float(rng.random()) < self.hit_rate(n_threads):
            self.hits += 1
            # Two-level popularity: most hits land on the warm core of
            # the cache (active orders, hot catalogue entries); the
            # uniform tail keeps the touched-line set wide — ECperf's
            # communication footprint spreads over many lines.
            if float(rng.random()) < 0.95:
                span = max(1, int(0.015 * self.capacity_beans))
                index = int(rng.integers(0, span))
            else:
                index = int(rng.integers(0, self.capacity_beans))
            return self.bean_addr(index)
        return None

    @property
    def observed_hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0
