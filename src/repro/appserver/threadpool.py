"""Execution-queue thread pool.

"The application server creates a fixed number of threads ... and
allocates idle threads out of these pools rather than creating new
ones" (Section 2.5).  The paper also observes that configurations with
too many threads spend much more time in the kernel — so the pool
size is a tuning knob with an optimum, which the model exposes.
"""

from __future__ import annotations

from repro.errors import ConfigError, SimulationError


class ThreadPool:
    """Fixed pool of worker threads with occupancy accounting."""

    def __init__(self, size: int) -> None:
        if size <= 0:
            raise ConfigError("thread pool size must be positive")
        self.size = size
        self.in_use = 0
        self.peak_in_use = 0
        self.acquires = 0
        self.rejected = 0

    def try_acquire(self) -> bool:
        """Take a worker if one is idle; False if the pool is exhausted."""
        self.acquires += 1
        if self.in_use >= self.size:
            self.rejected += 1
            return False
        self.in_use += 1
        if self.in_use > self.peak_in_use:
            self.peak_in_use = self.in_use
        return True

    def release(self) -> None:
        if self.in_use <= 0:
            raise SimulationError("release on an empty thread pool")
        self.in_use -= 1

    @property
    def rejection_ratio(self) -> float:
        return self.rejected / self.acquires if self.acquires else 0.0

    @staticmethod
    def kernel_overhead_factor(pool_size: int, n_procs: int) -> float:
        """Extra kernel time from over-threading.

        With far more runnable threads than processors, the OS spends
        time context switching and migrating them.  Model: overhead
        grows quadratically in the threads-per-processor ratio beyond
        2 (the well-tuned region the paper lands in).

        >>> ThreadPool.kernel_overhead_factor(16, 8) == 1.0
        True
        >>> ThreadPool.kernel_overhead_factor(128, 8) > 1.2
        True
        """
        if pool_size <= 0 or n_procs <= 0:
            raise ConfigError("pool_size and n_procs must be positive")
        ratio = pool_size / n_procs
        if ratio <= 2.0:
            return 1.0
        return 1.0 + 0.02 * (ratio - 2.0) ** 2
