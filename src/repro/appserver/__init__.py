"""Application-server model.

The paper hosts ECperf on "a leading commercial Java-based application
server" whose name licensing forbids disclosing.  The reproduction
models the three performance features the paper calls out
(Section 2.5): thread pooling, database connection pooling, and
object-level caching of beans — plus the servlet and EJB code regions
that give ECperf its large instruction footprint.
"""

from repro.appserver.beancache import BeanCache
from repro.appserver.connpool import ConnectionPool
from repro.appserver.container import ApplicationServer, CodeRegionSpec
from repro.appserver.ejb import ECPERF_BEAN_REGIONS, ejb_container_regions
from repro.appserver.servlet import servlet_regions
from repro.appserver.threadpool import ThreadPool

__all__ = [
    "BeanCache",
    "ConnectionPool",
    "ApplicationServer",
    "CodeRegionSpec",
    "ECPERF_BEAN_REGIONS",
    "ejb_container_regions",
    "servlet_regions",
    "ThreadPool",
]
