"""EJB component and container code regions.

ECperf's business rules are Enterprise Java Beans hosted in the
application server's EJB container (Sections 2.3, 2.5).  Executing a
BBop walks through container dispatch, transaction management,
persistence, JDBC access and the domain beans themselves — a much
larger body of hot code than SPECjbb's self-contained loop, which is
why ECperf's instruction miss rate is far higher at intermediate
cache sizes (Figure 12).

Regions are *specs* (name, size, relative hotness); the workload
layer assigns them addresses and emits fetch streams.
"""

from __future__ import annotations

from repro.appserver.container import CodeRegionSpec


def ejb_container_regions() -> list[CodeRegionSpec]:
    """Hot code of the EJB container and its services."""
    return [
        CodeRegionSpec("container.dispatch", instructions=9_000, hotness=10.0),
        CodeRegionSpec("container.txn_manager", instructions=7_000, hotness=8.0),
        CodeRegionSpec("container.persistence", instructions=9_000, hotness=6.0),
        CodeRegionSpec("container.security", instructions=6_000, hotness=3.0),
        CodeRegionSpec("container.pooling", instructions=5_000, hotness=5.0),
        CodeRegionSpec("jdbc.driver", instructions=10_000, hotness=6.0),
        CodeRegionSpec("jndi.lookup", instructions=5_000, hotness=2.0),
        CodeRegionSpec("rmi.marshalling", instructions=6_000, hotness=4.0),
        CodeRegionSpec("xml.parser", instructions=8_000, hotness=2.5),
        CodeRegionSpec("net.client", instructions=5_000, hotness=4.0),
    ]


#: The ECperf domain beans (Customer, Manufacturing, Supplier, Corporate).
ECPERF_BEAN_REGIONS: dict[str, list[CodeRegionSpec]] = {
    "customer": [
        CodeRegionSpec("bean.order_entry", instructions=8_000, hotness=8.0),
        CodeRegionSpec("bean.order_status", instructions=6_000, hotness=4.0),
        CodeRegionSpec("bean.customer_session", instructions=5_000, hotness=5.0),
    ],
    "manufacturing": [
        CodeRegionSpec("bean.workorder", instructions=7_000, hotness=7.0),
        CodeRegionSpec("bean.largeorder", instructions=5_000, hotness=2.0),
        CodeRegionSpec("bean.assembly", instructions=6_000, hotness=5.0),
    ],
    "supplier": [
        CodeRegionSpec("bean.purchase_order", instructions=5_000, hotness=3.0),
        CodeRegionSpec("bean.receiver", instructions=5_000, hotness=2.0),
    ],
    "corporate": [
        CodeRegionSpec("bean.parts_catalog", instructions=5_000, hotness=3.0),
        CodeRegionSpec("bean.discount_rules", instructions=4_000, hotness=2.0),
    ],
}


def all_bean_regions() -> list[CodeRegionSpec]:
    """Every domain bean region, flattened."""
    regions: list[CodeRegionSpec] = []
    for domain_regions in ECPERF_BEAN_REGIONS.values():
        regions.extend(domain_regions)
    return regions
