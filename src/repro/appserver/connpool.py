"""Database connection pool.

"The application server in ECperf shares its database connection pool
between its many threads ... which could lead to contention in larger
systems" (Section 4.1).  The pool is one of the two shared-resource
bottlenecks behind the ~25% idle time on large processor sets
(Figure 5).

Like the lock model, two views: a token-accounting view for discrete
use, and an analytic waiting-fraction estimate for the throughput
model.
"""

from __future__ import annotations

from repro.errors import ConfigError, SimulationError


class ConnectionPool:
    """Fixed set of database connections shared by worker threads."""

    def __init__(self, size: int) -> None:
        if size <= 0:
            raise ConfigError("connection pool size must be positive")
        self.size = size
        self.in_use = 0
        self.peak_in_use = 0
        self.acquires = 0
        self.blocked = 0

    def try_acquire(self) -> bool:
        """Take a connection; False means the caller must wait."""
        self.acquires += 1
        if self.in_use >= self.size:
            self.blocked += 1
            return False
        self.in_use += 1
        if self.in_use > self.peak_in_use:
            self.peak_in_use = self.in_use
        return True

    def release(self) -> None:
        if self.in_use <= 0:
            raise SimulationError("release on an empty connection pool")
        self.in_use -= 1

    @property
    def block_ratio(self) -> float:
        return self.blocked / self.acquires if self.acquires else 0.0

    @staticmethod
    def wait_fraction(
        n_procs: int, pool_size: int, hold_fraction: float
    ) -> float:
        """Fraction of time threads wait for a connection.

        Each of the p concurrently-running transaction threads holds a
        connection for ``hold_fraction`` of its service time, so the
        offered connection demand is ``p * hold_fraction`` connection-
        equivalents.  Demand beyond ``pool_size`` translates into
        waiting, with a smooth queueing onset below saturation.

        With no more threads than connections every acquire succeeds
        immediately — in particular the degenerate single-client pool
        (``n_procs == pool_size == 1``) waits exactly never, whatever
        the hold fraction.

        >>> ConnectionPool.wait_fraction(2, 8, 0.5)
        0.0
        >>> ConnectionPool.wait_fraction(1, 1, 0.99)
        0.0
        >>> ConnectionPool.wait_fraction(15, 8, 0.8) > 0.2
        True
        """
        if n_procs <= 0 or pool_size <= 0:
            raise ConfigError("n_procs and pool_size must be positive")
        if not 0.0 <= hold_fraction <= 1.0:
            raise ConfigError("hold_fraction must be in [0, 1]")
        if n_procs <= pool_size:
            return 0.0  # a connection per thread: nobody ever waits
        demand = n_procs * hold_fraction
        if demand <= 0:
            return 0.0
        # Saturation shortfall: demand the pool cannot serve.
        served = min(demand, float(pool_size))
        saturation_wait = (demand - served) / demand
        # Queueing onset as utilization approaches the pool capacity.
        rho = min(0.95, demand / pool_size)
        onset = 0.05 * rho**4
        return min(0.95, saturation_wait + onset * (1.0 - saturation_wait))
