"""The SPECjbb2000 workload model.

SPECjbb combines all three tiers in one JVM (Section 2.1): client
threads, business logic, and an emulated database of object trees.
One thread drives each warehouse.  The properties the paper measures
emerge from the model's structure:

- **small instruction footprint** — one self-contained application
  plus the JVM runtime (~250 KB hot code), so intermediate
  instruction caches hold it (Figure 12);
- **linearly growing data set** — each warehouse adds ~14 MB of
  object trees in the old generation (Figures 11, 13);
- **sparse tree updates** — most descents only read, so the trees
  rarely produce cache-to-cache transfers (Section 5.2);
- **hot shared lines** — the company-level lock and counters are
  touched by every NewOrder/Payment, concentrating communication on
  a handful of lines (the hottest line carries ~20% of all C2C
  transfers, Figure 14).
"""

from __future__ import annotations

import numpy as np

from repro.appserver.container import CodeRegionSpec
from repro.core.config import SimConfig
from repro.errors import WorkloadError
from repro.jvm.heap import GenerationalHeap, HeapLayout
from repro.jvm.threads import ThreadRegistry
from repro.rng import RngFactory
from repro.units import mb
from repro.workloads import layout
from repro.workloads.base import (
    ChunkedTrace,
    StreamBuilder,
    TraceBundle,
    code_sweep_refs,
    emit_chunked_refs,
    region_sweep_refs,
)
from repro.workloads.codepath import CodeLayout, jvm_runtime_regions
from repro.workloads.database import EmulatedDatabase
from repro.workloads.mix import SPECJBB_MIX, JbbTxnType, pick_txn


def specjbb_code_regions() -> list[CodeRegionSpec]:
    """SPECjbb's own hot code: the benchmark is one compact program."""
    return [
        CodeRegionSpec("jbb.transaction_manager", instructions=6_000, hotness=9.0),
        CodeRegionSpec("jbb.new_order", instructions=5_000, hotness=8.0),
        CodeRegionSpec("jbb.payment", instructions=4_000, hotness=8.0),
        CodeRegionSpec("jbb.order_status", instructions=3_000, hotness=2.0),
        CodeRegionSpec("jbb.delivery", instructions=3_000, hotness=2.0),
        CodeRegionSpec("jbb.stock_level", instructions=3_000, hotness=2.0),
        CodeRegionSpec("jbb.btree_ops", instructions=5_000, hotness=10.0),
        CodeRegionSpec("jbb.util_random", instructions=2_000, hotness=6.0),
    ]


class SpecJbbWorkload:
    """Generator of SPECjbb-shaped reference streams.

    Args:
        warehouses: the benchmark scale factor — sets both the thread
            count and the emulated database size.
        remote_visit_prob: probability a tree descent targets another
            warehouse (cross-thread sharing on tree lines).
        shared_struct_prob: probability a transaction touches a shared
            JVM structure beyond the company counters.
    """

    name = "specjbb"

    def __init__(
        self,
        warehouses: int = 8,
        remote_visit_prob: float = 0.05,
        shared_struct_prob: float = 0.20,
        heap_layout: HeapLayout | None = None,
    ) -> None:
        if warehouses < 1:
            raise WorkloadError("warehouses must be >= 1")
        if not 0.0 <= remote_visit_prob <= 1.0:
            raise WorkloadError("remote_visit_prob must be in [0, 1]")
        if not 0.0 <= shared_struct_prob <= 1.0:
            raise WorkloadError("shared_struct_prob must be in [0, 1]")
        self.warehouses = warehouses
        self.remote_visit_prob = remote_visit_prob
        self.shared_struct_prob = shared_struct_prob
        self.db = EmulatedDatabase(warehouses)
        self.code = CodeLayout(
            jvm_runtime_regions() + specjbb_code_regions(),
            locality=0.78,
            offset_skew=3.5,
        )
        self.heap = GenerationalHeap(heap_layout or HeapLayout())
        self._heap_layout = self.heap.layout

    # -- trace generation ---------------------------------------------------

    def generate(
        self, n_procs: int, sim: SimConfig, rng_factory: RngFactory
    ) -> TraceBundle:
        """One reference stream per processor.

        Threads (one per warehouse) are bound round-robin to the
        processor set; each processor's stream interleaves full
        transactions from its threads.
        """
        if n_procs < 1:
            raise WorkloadError("n_procs must be >= 1")
        heap = GenerationalHeap(self._heap_layout)
        registry = ThreadRegistry(n_procs)
        share = 1.0 / self.warehouses
        threads = [registry.spawn(cursor=heap.cursor(share)) for _ in range(self.warehouses)]
        per_cpu: list[list[int]] = []
        instructions: list[int] = []
        for cpu in range(n_procs):
            rng = rng_factory.stream(f"specjbb.cpu{cpu}")
            builder = StreamBuilder(rng)
            cpu_threads = [t for t in threads if t.cpu == cpu]
            if not cpu_threads:
                per_cpu.append([])
                instructions.append(0)
                continue
            prewarm = self._prewarm_refs(cpu_threads)
            if len(prewarm) <= 0.8 * sim.warmup_fraction * sim.refs_per_proc:
                builder.refs.extend(prewarm)
            turn = 0
            while len(builder.refs) < sim.refs_per_proc:
                thread = cpu_threads[turn % len(cpu_threads)]
                turn += 1
                txn = pick_txn(rng, SPECJBB_MIX)
                self._transaction(builder, thread, txn)
            per_cpu.append(builder.refs[: sim.refs_per_proc])
            instructions.append(builder.instructions)
        return TraceBundle(
            workload=self.name,
            per_cpu=per_cpu,
            instructions=instructions,
            meta={
                "warehouses": self.warehouses,
                "live_bytes": self.db.total_bytes,
                "code_bytes": self.code.total_code_bytes,
            },
        )

    def generate_chunks(
        self, n_procs: int, sim: SimConfig, rng_factory: RngFactory, chunk_refs: int
    ) -> ChunkedTrace:
        """The :meth:`generate` streams as lazy fixed-size chunks.

        Same threads, heap cursors, and per-processor RNG streams as
        the materialized path; the emission loop is shared with it via
        :func:`repro.workloads.base.emit_chunked_refs`, so each
        processor's concatenated chunks are bit-identical to
        ``generate(...).per_cpu[cpu]``.  Per-processor iterators are
        independent (cursor-local allocation, stateless RNG streams)
        and may be interleaved.
        """
        if n_procs < 1:
            raise WorkloadError("n_procs must be >= 1")
        heap = GenerationalHeap(self._heap_layout)
        registry = ThreadRegistry(n_procs)
        share = 1.0 / self.warehouses
        threads = [registry.spawn(cursor=heap.cursor(share)) for _ in range(self.warehouses)]
        lengths: list[int] = []
        per_cpu: list = []
        for cpu in range(n_procs):
            rng = rng_factory.stream(f"specjbb.cpu{cpu}")
            builder = StreamBuilder(rng)
            cpu_threads = [t for t in threads if t.cpu == cpu]
            if not cpu_threads:
                lengths.append(0)
                per_cpu.append(iter(()))
                continue
            prewarm = self._prewarm_refs(cpu_threads)
            if len(prewarm) <= 0.8 * sim.warmup_fraction * sim.refs_per_proc:
                builder.refs.extend(prewarm)
            per_cpu.append(
                emit_chunked_refs(
                    builder,
                    sim.refs_per_proc,
                    chunk_refs,
                    self._txn_emitter(builder, cpu_threads),
                )
            )
            lengths.append(sim.refs_per_proc)
        return ChunkedTrace(lengths=lengths, per_cpu=per_cpu)

    def _txn_emitter(self, builder: StreamBuilder, cpu_threads):
        """One round-robin transaction per call, same RNG draws as
        the materialized loop body."""
        turn = 0

        def emit() -> None:
            nonlocal turn
            thread = cpu_threads[turn % len(cpu_threads)]
            turn += 1
            txn = pick_txn(builder.rng, SPECJBB_MIX)
            self._transaction(builder, thread, txn)

        return emit

    def _prewarm_refs(self, cpu_threads) -> list[int]:
        """Pre-warm preamble: hot code + this processor's hot data.

        Consumed inside the warmup window (see
        :func:`repro.workloads.base.code_sweep_refs`): the steady
        state the paper measures has the hot code and each thread's
        hot tree regions long resident.
        """
        refs = code_sweep_refs(self.code)
        for thread in cpu_threads:
            wh = thread.tid % self.warehouses
            data = self.db.warehouse(wh)
            for tree in data.trees():
                # Root and first interior level, fully.
                for level in range(min(2, tree.depth - 1)):
                    start = tree.base + tree.level_offset(level)
                    nbytes = (tree.fanout**level) * tree.node_size
                    refs.extend(region_sweep_refs(start, nbytes))
                # Hot slice of the leaf level.
                leaves_start = tree.base + tree.level_offset(tree.depth - 1)
                hot_bytes = int(0.006 * tree.n_leaves) * tree.node_size
                refs.extend(region_sweep_refs(leaves_start, hot_bytes))
        # Shared item tree: interiors plus the hot leaf slice.
        item = self.db.item_tree
        refs.extend(region_sweep_refs(item.base, item.level_offset(item.depth - 1)))
        leaves_start = item.base + item.level_offset(item.depth - 1)
        refs.extend(
            region_sweep_refs(leaves_start, item.n_leaves * item.node_size)
        )
        return refs

    def _transaction(self, b: StreamBuilder, thread, txn: JbbTxnType) -> None:
        """Emit one SPECjbb operation for ``thread``."""
        rng = b.rng
        own_wh = thread.tid % self.warehouses
        b.set_stack(thread.stack_base)
        b.code_burst(self.code, mean_burst_instr=150)
        b.stack_work(thread.stack_base, frames=3)
        # The object trees are protected by locks (Section 4.1).
        warehouse_lock = layout.SHARED_BASE + 0x2000 + own_wh * 64
        b.rmw(warehouse_lock)
        if txn.company_update and float(rng.random()) < 0.6:
            # Company-level counters: order/payment totals roll up
            # into company-wide state — the hottest line in the
            # benchmark (thread-local batching keeps it off the
            # critical path of some operations).
            b.rmw(layout.COMPANY_LOCK)
            b.rmw(layout.COMPANY_TOTALS)
        # Interleave code with the data actions of the operation body.
        # The first descent lands on a cold (uniform) leaf — the new
        # order/customer row; the rest revisit hot recent data.
        writes_left = txn.leaf_writes
        for visit in range(txn.tree_visits):
            if visit % 2 == 0:
                b.code_burst(self.code, mean_burst_instr=150)
            if float(rng.random()) < self.remote_visit_prob and self.warehouses > 1:
                wh_id = int(rng.integers(0, self.warehouses))
            else:
                wh_id = own_wh
            data = self.db.warehouse(wh_id)
            tree = data.trees()[visit % 4]
            write = writes_left > 0
            if write:
                writes_left -= 1
            if visit == 0 and txn.name == "new_order" and float(rng.random()) < 0.35:
                # The transaction's target row: uniform (cold) access.
                leaf = b.tree_descent(tree, skew=0.0, write_leaf=write)
            else:
                # Supporting rows come from the hot working set.
                leaf = b.tree_descent(
                    tree, write_leaf=write, hot_fraction=0.006, hot_prob=0.98
                )
            b.object_access(leaf, n_fields=2, write_fields=1 if write else 0)
            # Rows span two lines: scan the record body too.
            b.load(leaf + 72)
        for _ in range(txn.item_lookups):
            b.tree_descent(
                self.db.item_tree, write_leaf=False, hot_fraction=0.06, hot_prob=0.97
            )
        remaining_bursts = max(0, txn.code_bursts - txn.tree_visits // 2 - 1)
        for i in range(remaining_bursts):
            b.code_burst(self.code, mean_burst_instr=150)
            if i % 2 == 0:
                b.stack_work(thread.stack_base, frames=2)
        # Company-wide order registry: every operation records its
        # order/payment in a shared structure whose slots migrate
        # between processors — the moderately-shared traffic that makes
        # the cache-to-cache ratio grow with processor count.
        for _ in range(2):
            slot = int(rng.integers(0, 96))
            b.rmw(layout.SHARED_BASE + 0x4000 + slot * 64)
        if float(rng.random()) < self.shared_struct_prob:
            # Shared JVM structure (monitor table / intern pool).
            slot = int(rng.integers(0, 32))
            b.rmw(layout.SHARED_BASE + 0x6000 + slot * 64)
        if txn.alloc_bytes > 0 and thread.cursor is not None:
            b.allocate(thread.cursor, txn.alloc_bytes)
        if float(rng.random()) < 0.06:
            # Clock-tick bookkeeping: the OS updates this CPU's run
            # queue, which other processors (and the OS outside the
            # processor set) also scan — the residual sharing behind
            # the non-zero 1-processor copyback rate (Section 4.3).
            b.rmw(layout.RUNQUEUE_BASE + thread.cpu * 64)
        b.store(warehouse_lock)  # release

    # -- analytic models ------------------------------------------------------

    def live_memory_mb(self, scale: int) -> float:
        """Live heap after GC at ``scale`` warehouses (Figure 11).

        Linear growth (~14 MB/warehouse plus a JVM/application base)
        up to ~30 warehouses.  Beyond that the generational collector
        begins compacting the older generations: the fragmentation
        carried in the pre-30 measurements is squeezed out and the
        reported post-GC heap *decreases* (Section 4.6), at a steep
        throughput cost not visible in this metric.
        """
        if scale < 1:
            raise WorkloadError("scale must be >= 1")
        base_mb = 40.0
        per_wh_mb = EmulatedDatabase(1).bytes_per_warehouse / mb(1)
        fragmentation = 1.18
        compaction_knee = 30
        live_true = base_mb + per_wh_mb * scale
        if scale <= compaction_knee:
            return live_true * fragmentation
        # Compacted: fragmentation stripped, and increasingly aggressive
        # old-gen collection holds the post-GC heap near the knee.
        at_knee = base_mb + per_wh_mb * compaction_knee
        decline = 1.0 - 0.012 * (scale - compaction_knee)
        return max(at_knee * decline, at_knee * 0.8)

    @property
    def kernel_time_model(self):
        """SPECjbb runs in one process: essentially no system time."""
        from repro.osmodel.netstack import KernelNetworkModel

        return KernelNetworkModel.none()
