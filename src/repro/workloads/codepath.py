"""Instruction-footprint model.

A workload's instruction stream is modeled as a sequence of *bursts*:
sequential fetch runs inside hot code regions, with regions chosen by
their relative hotness.  The emergent behavior matches how real
instruction caches see middleware: a large body of warm code touched
with a skewed distribution produces the smooth miss-rate-vs-size
curves of Figure 12, and the *total* amount of hot code — much larger
for ECperf (servlet engine + EJB container + JDBC + XML + beans) than
for SPECjbb — sets where the curve falls off.
"""

from __future__ import annotations

import numpy as np

from repro.appserver.container import CodeRegionSpec
from repro.errors import ConfigError
from repro.memsys.block import IFETCH, IFETCH_BYTES, encode_ref

#: Base of the text segment in the simulated address space.
CODE_REGION_BASE = 0x1000_0000


class CodeSegment:
    """A contiguous region of instructions at a fixed address."""

    def __init__(self, name: str, base: int, instructions: int) -> None:
        if instructions <= 0:
            raise ConfigError(f"{name}: instructions must be positive")
        if base % IFETCH_BYTES != 0:
            raise ConfigError(f"{name}: base must be {IFETCH_BYTES}-byte aligned")
        self.name = name
        self.base = base
        self.instructions = instructions
        self.code_bytes = instructions * 4

    def fetch_refs(self, start_instr: int, n_instr: int) -> list[int]:
        """Encoded fetch refs for ``n_instr`` sequential instructions.

        Fetches are emitted one per :data:`IFETCH_BYTES` (32 B) of
        straight-line code; the run wraps within the segment, modeling
        loops.
        """
        if n_instr <= 0:
            return []
        start_byte = (start_instr * 4) % self.code_bytes
        start_byte -= start_byte % IFETCH_BYTES
        refs = []
        offset = start_byte
        remaining_bytes = n_instr * 4
        while remaining_bytes > 0:
            refs.append(encode_ref(self.base + offset, IFETCH))
            offset += IFETCH_BYTES
            if offset >= self.code_bytes:
                offset = 0
            remaining_bytes -= IFETCH_BYTES
        return refs


class CodeLayout:
    """Assigns addresses to code-region specs and samples fetch bursts."""

    def __init__(
        self,
        specs: list[CodeRegionSpec],
        base: int = CODE_REGION_BASE,
        locality: float = 0.6,
        offset_skew: float = 2.0,
    ) -> None:
        """``locality`` and ``offset_skew`` set this code base's character.

        A compact benchmark like SPECjbb runs tight loops (high
        locality, strong entry-point skew); a layered server like
        ECperf spreads execution across its stack (lower locality,
        flatter entries), which is what separates the two instruction
        miss curves in Figure 12.
        """
        if not specs:
            raise ConfigError("code layout needs at least one region")
        if not 0.0 <= locality < 1.0:
            raise ConfigError("locality must be in [0, 1)")
        if offset_skew <= 0:
            raise ConfigError("offset_skew must be positive")
        self.locality = locality
        self.offset_skew = offset_skew
        self.segments: list[CodeSegment] = []
        addr = base
        for spec in specs:
            segment = CodeSegment(spec.name, addr, spec.instructions)
            self.segments.append(segment)
            # Pad regions apart so distinct regions never share a line.
            addr += (segment.code_bytes + 255) // 256 * 256
        weights = np.array([s.hotness for s in specs], dtype=float)
        self._cumulative = np.cumsum(weights / weights.sum())
        self.total_code_bytes = sum(s.code_bytes for s in self.segments)

    def pick_segment(self, rng: np.random.Generator) -> CodeSegment:
        """Sample a segment proportionally to its hotness."""
        u = float(rng.random())
        index = int(np.searchsorted(self._cumulative, u, side="right"))
        return self.segments[min(index, len(self.segments) - 1)]

    def burst(
        self,
        rng: np.random.Generator,
        mean_burst_instr: int = 100,
        prev: tuple[CodeSegment, int] | None = None,
        locality: float | None = None,
        offset_skew: float | None = None,
    ) -> tuple[list[int], int, tuple[CodeSegment, int]]:
        """One fetch burst: ``(refs, instruction_count, continuation)``.

        Three locality mechanisms shape the stream the way real
        middleware code behaves:

        - *segment stickiness*: with probability ``locality`` the
          burst continues in the caller's segment near the previous
          position (a call returning, the next basic block);
        - *entry-point skew*: fresh segments are entered near their
          front with ``u ** offset_skew`` bias (hot entry paths, cold
          error tails);
        - *loop windows*: the burst's instructions execute as
          iterations over a small window (2-8 fetch lines), giving
          the temporal reuse loops provide.

        Callers thread the returned continuation back in as ``prev``.
        """
        if locality is None:
            locality = self.locality
        if offset_skew is None:
            offset_skew = self.offset_skew
        if prev is not None and float(rng.random()) < locality:
            segment, last_pos = prev
            if float(rng.random()) < 0.45:
                # Re-enter the loop just executed (hot inner loops are
                # re-entered many times per transaction).
                start = last_pos
            else:
                start = (last_pos + int(rng.integers(0, 64))) % segment.instructions
        else:
            segment = self.pick_segment(rng)
            u = float(rng.random()) ** offset_skew
            start = int(u * segment.instructions)
        n_instr = max(16, int(rng.exponential(mean_burst_instr)))
        # Loop window: 2-8 fetch lines revisited until the burst retires.
        window_lines = int(rng.integers(2, 9))
        window_instr = window_lines * (IFETCH_BYTES // 4)
        refs: list[int] = []
        start_byte = (start * 4) % segment.code_bytes
        start_byte -= start_byte % IFETCH_BYTES
        remaining = n_instr
        while remaining > 0:
            span = min(remaining, window_instr)
            offset = start_byte
            for _ in range((span + IFETCH_BYTES // 4 - 1) // (IFETCH_BYTES // 4)):
                refs.append(encode_ref(segment.base + offset, IFETCH))
                offset += IFETCH_BYTES
                if offset >= segment.code_bytes:
                    offset = 0
            remaining -= span
        end_pos = (start + n_instr) % segment.instructions
        return refs, n_instr, (segment, end_pos)

    def describe(self) -> str:
        kb_total = self.total_code_bytes / 1024
        return f"{len(self.segments)} code regions, {kb_total:.0f} KB hot code"


def jvm_runtime_regions() -> list[CodeRegionSpec]:
    """HotSpot runtime code both workloads execute.

    JIT-compiled method bodies dominate the fetch stream, but the
    runtime's allocation fast path, synchronization, and write-barrier
    code are hot in every Java workload.
    """
    return [
        CodeRegionSpec("jvm.alloc_fastpath", instructions=3_000, hotness=12.0),
        CodeRegionSpec("jvm.write_barrier", instructions=1_500, hotness=10.0),
        CodeRegionSpec("jvm.monitor_enter", instructions=4_000, hotness=8.0),
        CodeRegionSpec("jvm.interpreter", instructions=7_000, hotness=3.0),
        CodeRegionSpec("jvm.jit_stubs", instructions=4_000, hotness=4.0),
        CodeRegionSpec("jvm.class_runtime", instructions=5_000, hotness=2.0),
    ]
