"""Emulated databases.

SPECjbb replaces the database tier with "trees of Java objects"
(Section 2.1); :class:`EmulatedDatabase` lays those trees out in the
old generation, one 24 MB slot per warehouse, so live data grows
linearly with the warehouse count (Figure 11).

ECperf's database runs on a separate machine; the application server
only sees JDBC traffic.  :class:`DatabaseTier` models what the middle
tier touches per round trip: the connection-pool slot and a private
marshalling buffer — plus the time cost used by the throughput model.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError, WorkloadError
from repro.jvm.objects import ObjectTree
from repro.units import mb
from repro.workloads import layout


@dataclass(frozen=True)
class WarehouseData:
    """One warehouse's object trees."""

    warehouse_id: int
    stock: ObjectTree
    customers: ObjectTree
    orders: ObjectTree
    history: ObjectTree

    @property
    def total_bytes(self) -> int:
        return (
            self.stock.total_bytes
            + self.customers.total_bytes
            + self.orders.total_bytes
            + self.history.total_bytes
        )

    def trees(self) -> list[ObjectTree]:
        return [self.stock, self.customers, self.orders, self.history]


def _tree_stagger(warehouse_id: int, tree_index: int) -> int:
    """Pseudo-random sub-megabyte offset for a tree's base address.

    Warehouse slots are 24 MB apart and tree offsets sit at whole
    megabytes; without a stagger, every warehouse's tree roots would
    map to the *same* cache sets (indices come from address bits below
    1 MB) and conflict-thrash pathologically.  Real heaps place
    objects wherever allocation happened to put them, so we perturb
    each tree base by a deterministic sub-MB amount.
    """
    return ((warehouse_id * 7919 + tree_index * 1543) % 1789) * 512


def _warehouse_trees(warehouse_id: int) -> WarehouseData:
    """Lay out one warehouse's trees inside its old-generation slot."""
    base = layout.WAREHOUSE_BASE + warehouse_id * layout.WAREHOUSE_STRIDE
    stock = ObjectTree(
        base=base + _tree_stagger(warehouse_id, 0),
        fanout=20,
        depth=4,
        node_size=512,
        name=f"wh{warehouse_id}.stock",
    )
    customers = ObjectTree(
        base=base + mb(6) + _tree_stagger(warehouse_id, 1),
        fanout=16,
        depth=4,
        node_size=512,
        name=f"wh{warehouse_id}.customers",
    )
    orders = ObjectTree(
        base=base + mb(10) + _tree_stagger(warehouse_id, 2),
        fanout=16,
        depth=4,
        node_size=512,
        name=f"wh{warehouse_id}.orders",
    )
    history = ObjectTree(
        base=base + mb(14) + _tree_stagger(warehouse_id, 3),
        fanout=16,
        depth=4,
        node_size=384,
        name=f"wh{warehouse_id}.history",
    )
    data = WarehouseData(
        warehouse_id=warehouse_id,
        stock=stock,
        customers=customers,
        orders=orders,
        history=history,
    )
    if data.total_bytes > layout.WAREHOUSE_STRIDE:
        raise ConfigError(
            f"warehouse trees ({data.total_bytes} B) exceed the "
            f"{layout.WAREHOUSE_STRIDE} B warehouse slot"
        )
    return data


class EmulatedDatabase:
    """SPECjbb's in-memory database: one tree set per warehouse."""

    def __init__(self, warehouses: int) -> None:
        if not 1 <= warehouses <= layout.MAX_WAREHOUSES:
            raise WorkloadError(
                f"warehouses must be in [1, {layout.MAX_WAREHOUSES}], got {warehouses}"
            )
        self.warehouses = warehouses
        self.data = [_warehouse_trees(w) for w in range(warehouses)]
        self.item_tree = ObjectTree(
            base=layout.ITEM_TREE_BASE, fanout=20, depth=3, node_size=256, name="items"
        )

    def warehouse(self, warehouse_id: int) -> WarehouseData:
        if not 0 <= warehouse_id < self.warehouses:
            raise WorkloadError(f"warehouse {warehouse_id} out of range")
        return self.data[warehouse_id]

    @property
    def total_bytes(self) -> int:
        """Bytes of live warehouse data (plus the shared item tree)."""
        return sum(w.total_bytes for w in self.data) + self.item_tree.total_bytes

    @property
    def bytes_per_warehouse(self) -> int:
        return self.data[0].total_bytes


@dataclass(frozen=True)
class DatabaseTier:
    """The remote database, as the application server experiences it."""

    mean_roundtrip_s: float = 2.5e-3
    rows_per_result: int = 4

    def __post_init__(self) -> None:
        if self.mean_roundtrip_s <= 0 or self.rows_per_result <= 0:
            raise ConfigError("roundtrip time and rows must be positive")

    def marshal_buffer_addr(self, tid: int) -> int:
        """Per-thread JDBC marshalling buffer."""
        if tid < 0:
            raise ConfigError("tid must be non-negative")
        return layout.MARSHAL_BUFFER_BASE + tid * layout.MARSHAL_BUFFER_STRIDE

    def result_bytes(self) -> int:
        """Bytes of result data marshalled per round trip."""
        return self.rows_per_result * 384
