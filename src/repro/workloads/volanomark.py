"""VolanoMark-style chat-server workload (related-work comparison).

Section 6 contrasts the middleware benchmarks with VolanoMark (Luo &
John): "VolanoMark behaves quite differently than ECperf or SPECjbb
because of the high number of threads it creates.  In VolanoMark, the
server creates a new thread for each client connection ... As a
result, the middle tier of the ECperf benchmark spends much less time
in the kernel than VolanoMark."

The model makes that contrast measurable: a chat server with one
thread *per connection* (hundreds of threads on a few processors),
tiny per-message business logic, and kernel network work on every
message — so its reference streams are dominated by thread-switch
and kernel activity rather than business logic, and its kernel-time
model is far above ECperf's.  Used by the related-work comparison
bench, not by the paper's figures.
"""

from __future__ import annotations

import numpy as np

from repro.appserver.container import CodeRegionSpec
from repro.core.config import SimConfig
from repro.errors import WorkloadError
from repro.jvm.heap import GenerationalHeap, HeapLayout
from repro.jvm.threads import ThreadRegistry
from repro.osmodel.netstack import KernelNetworkModel
from repro.rng import RngFactory
from repro.workloads import layout
from repro.workloads.base import StreamBuilder, TraceBundle, code_sweep_refs
from repro.workloads.codepath import CodeLayout, jvm_runtime_regions

#: Chat rooms' message boards live with the other shared structures.
ROOM_BASE = layout.SHARED_BASE + 0xA000


def volano_code_regions() -> list[CodeRegionSpec]:
    """A chat server's hot code: tiny application, hot kernel paths."""
    return [
        CodeRegionSpec("volano.message_dispatch", instructions=4_000, hotness=10.0),
        CodeRegionSpec("volano.room_broadcast", instructions=3_000, hotness=8.0),
        CodeRegionSpec("volano.presence", instructions=2_000, hotness=3.0),
        CodeRegionSpec("kernel.tcp", instructions=10_000, hotness=14.0),
        CodeRegionSpec("kernel.socket", instructions=6_000, hotness=12.0),
        CodeRegionSpec("kernel.scheduler", instructions=5_000, hotness=10.0),
    ]


class VolanoMarkWorkload:
    """Generator of VolanoMark-shaped reference streams.

    Args:
        connections: client connections == server threads (the
            benchmark's defining excess; default 20 rooms x 20 users).
        rooms: chat rooms; a message fans out to one room's members.
    """

    name = "volanomark"

    def __init__(
        self,
        connections: int = 400,
        rooms: int = 20,
        heap_layout: HeapLayout | None = None,
    ) -> None:
        if connections < 1:
            raise WorkloadError("connections must be >= 1")
        if not 1 <= rooms <= connections:
            raise WorkloadError("rooms must be in [1, connections]")
        self.connections = connections
        self.rooms = rooms
        self.code = CodeLayout(
            jvm_runtime_regions() + volano_code_regions(),
            locality=0.7,
            offset_skew=3.0,
        )
        self._heap_layout = heap_layout or HeapLayout()

    def generate(
        self, n_procs: int, sim: SimConfig, rng_factory: RngFactory
    ) -> TraceBundle:
        """One stream per processor, time-sliced over many threads.

        Unlike the pooled middleware servers, hundreds of threads share
        each processor; every message handled runs under a different
        thread context, so fetch locality and stack reuse are
        constantly broken — the kernel-heavy, switch-heavy profile the
        related work reports.
        """
        if n_procs < 1:
            raise WorkloadError("n_procs must be >= 1")
        heap = GenerationalHeap(self._heap_layout)
        registry = ThreadRegistry(n_procs)
        # One cursor per processor (per-thread cursors would exhaust
        # the share budget at hundreds of threads).
        cursors = [heap.cursor(1.0 / n_procs) for _ in range(n_procs)]
        threads = [registry.spawn() for _ in range(self.connections)]
        per_cpu: list[list[int]] = []
        instructions: list[int] = []
        for cpu in range(n_procs):
            rng = rng_factory.stream(f"volano.cpu{cpu}")
            builder = StreamBuilder(rng)
            prewarm = code_sweep_refs(self.code)
            if len(prewarm) <= 0.8 * sim.warmup_fraction * sim.refs_per_proc:
                builder.refs.extend(prewarm)
            cpu_threads = [t for t in threads if t.cpu == cpu]
            turn = 0
            while len(builder.refs) < sim.refs_per_proc:
                thread = cpu_threads[turn % len(cpu_threads)]
                turn += 1
                self._message(builder, thread, cursors[cpu])
            per_cpu.append(builder.refs[: sim.refs_per_proc])
            instructions.append(builder.instructions)
        return TraceBundle(
            workload=self.name,
            per_cpu=per_cpu,
            instructions=instructions,
            meta={
                "connections": self.connections,
                "rooms": self.rooms,
                "code_bytes": self.code.total_code_bytes,
                "threads_per_proc": self.connections / n_procs,
            },
        )

    def _message(self, b: StreamBuilder, thread, cursor) -> None:
        """Handle one chat message on ``thread``."""
        rng = b.rng
        # A fresh thread context for nearly every message.
        b.set_stack(thread.stack_base)
        # Kernel receive + scheduler work dominate the path.
        b.code_burst(self.code, mean_burst_instr=90)
        b.rmw(layout.RUNQUEUE_BASE + thread.cpu * 64)  # context switch
        b.code_burst(self.code, mean_burst_instr=90)
        # Read the message from a shared network buffer.
        nbuf = layout.NET_BUFFER_POOL + int(rng.integers(0, 64)) * 256
        b.rmw(nbuf)
        b.scan(nbuf, 256, write=False)
        # Tiny business logic: append to the room's board.
        room = int(rng.integers(0, self.rooms))
        board = ROOM_BASE + room * 512
        b.rmw(board)
        b.object_access(board + 64, n_fields=2, write_fields=1)
        b.code_burst(self.code, mean_burst_instr=90)
        # Fan the message out: one kernel send per room member sample.
        for _ in range(3):
            out = layout.NET_BUFFER_POOL + int(rng.integers(0, 64)) * 256
            b.rmw(out)
            b.scan(out, 256, write=True)
            b.code_burst(self.code, mean_burst_instr=90)
        # Small allocation for the message object.
        b.allocate(cursor, 128)

    def live_memory_mb(self, scale: int) -> float:
        """Live heap vs connection count: per-connection buffers only."""
        if scale < 1:
            raise WorkloadError("scale must be >= 1")
        return 30.0 + 0.05 * scale

    @property
    def kernel_time_model(self) -> KernelNetworkModel:
        """Far above ECperf: the server lives in the network stack."""
        return KernelNetworkModel(
            base_fraction=0.28, contention_coeff=0.025, exponent=1.3, cap=0.75
        )
