"""Synthetic middleware workload models.

The paper measures two Java middleware benchmarks; the reproduction
models them as generators of multi-threaded memory reference streams
whose structure matches what the paper reports:

- :class:`~repro.workloads.specjbb.SpecJbbWorkload` — SPECjbb2000:
  all three tiers in one JVM, warehouses as in-memory object trees,
  one thread per warehouse, live data growing linearly with the
  warehouse count;
- :class:`~repro.workloads.ecperf.EcperfWorkload` — ECperf's middle
  tier: servlet + EJB code paths (large instruction footprint), a
  shared bean cache (wide sharing, fixed footprint), database and
  supplier tiers across the network (kernel time).
"""

from repro.workloads.base import StreamBuilder, TraceBundle, Workload, os_background_trace
from repro.workloads.codepath import CODE_REGION_BASE, CodeLayout, CodeSegment
from repro.workloads.database import EmulatedDatabase, WarehouseData
from repro.workloads.driver import BBopCounter, DriverModel
from repro.workloads.ecperf import EcperfWorkload
from repro.workloads.mix import (
    ECPERF_MIX,
    SPECJBB_MIX,
    EcperfTxnType,
    JbbTxnType,
    pick_txn,
)
from repro.workloads.specjbb import SpecJbbWorkload
from repro.workloads.volanomark import VolanoMarkWorkload

__all__ = [
    "StreamBuilder",
    "TraceBundle",
    "Workload",
    "os_background_trace",
    "CODE_REGION_BASE",
    "CodeLayout",
    "CodeSegment",
    "EmulatedDatabase",
    "WarehouseData",
    "BBopCounter",
    "DriverModel",
    "EcperfWorkload",
    "ECPERF_MIX",
    "SPECJBB_MIX",
    "EcperfTxnType",
    "JbbTxnType",
    "pick_txn",
    "SpecJbbWorkload",
    "VolanoMarkWorkload",
]
