"""Transaction mixes.

SPECjbb's operation mix follows its TPC-C heritage (Section 2.1):
NewOrder and Payment dominate, with OrderStatus, Delivery and
StockLevel filling out the mix.  ECperf's "Benchmark Business
Operations" (BBops) span its four domains (Section 2.2): customer
orders dominate, with manufacturing work orders scheduled alongside
and supplier purchase orders triggered as inventory drains.

Each type carries the knobs its generator lowers into references:
how many tree descents / bean lookups, how many leaf updates, how
much allocation, which locks.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError


@dataclass(frozen=True)
class JbbTxnType:
    """One SPECjbb operation type."""

    name: str
    weight: float
    tree_visits: int  # B-tree descents into warehouse data
    leaf_writes: int  # descents that update the leaf (sparse updates)
    item_lookups: int  # reads of the global (shared) item tree
    alloc_bytes: int  # new-generation allocation per operation
    code_bursts: int  # instruction bursts per operation
    company_update: bool  # touches the company-level shared counters

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise ConfigError(f"{self.name}: weight must be positive")
        if self.leaf_writes > self.tree_visits:
            raise ConfigError(f"{self.name}: more leaf writes than visits")


#: The SPECjbb operation mix (TPC-C-like weights).
SPECJBB_MIX: list[JbbTxnType] = [
    JbbTxnType(
        name="new_order",
        weight=0.44,
        tree_visits=5,
        leaf_writes=2,
        item_lookups=3,
        alloc_bytes=128,
        code_bursts=16,
        company_update=True,
    ),
    JbbTxnType(
        name="payment",
        weight=0.43,
        tree_visits=3,
        leaf_writes=2,
        item_lookups=0,
        alloc_bytes=64,
        code_bursts=10,
        company_update=True,
    ),
    JbbTxnType(
        name="order_status",
        weight=0.04,
        tree_visits=3,
        leaf_writes=0,
        item_lookups=0,
        alloc_bytes=64,
        code_bursts=8,
        company_update=False,
    ),
    JbbTxnType(
        name="delivery",
        weight=0.05,
        tree_visits=6,
        leaf_writes=3,
        item_lookups=0,
        alloc_bytes=64,
        code_bursts=12,
        company_update=False,
    ),
    JbbTxnType(
        name="stock_level",
        weight=0.04,
        tree_visits=8,
        leaf_writes=0,
        item_lookups=4,
        alloc_bytes=96,
        code_bursts=12,
        company_update=False,
    ),
]


@dataclass(frozen=True)
class EcperfTxnType:
    """One ECperf BBop as seen by the application server."""

    name: str
    domain: str  # customer / manufacturing / supplier / corporate
    weight: float
    bean_lookups: int  # object-cache lookups
    bean_updates: int  # bean-state writes (shared dirty lines)
    db_roundtrips_on_miss: int  # JDBC round trips when the cache misses
    supplier_xml: bool  # exchanges an XML document with the supplier
    alloc_bytes: int
    servlet_bursts: int  # presentation-layer instruction bursts
    container_bursts: int  # EJB container + bean instruction bursts

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise ConfigError(f"{self.name}: weight must be positive")
        if self.domain not in ("customer", "manufacturing", "supplier", "corporate"):
            raise ConfigError(f"{self.name}: unknown domain {self.domain!r}")


#: The ECperf BBop mix across its four domains.
ECPERF_MIX: list[EcperfTxnType] = [
    EcperfTxnType(
        name="new_order",
        domain="customer",
        weight=0.30,
        bean_lookups=8,
        bean_updates=3,
        db_roundtrips_on_miss=2,
        supplier_xml=False,
        alloc_bytes=64,
        servlet_bursts=5,
        container_bursts=14,
    ),
    EcperfTxnType(
        name="change_order",
        domain="customer",
        weight=0.12,
        bean_lookups=6,
        bean_updates=2,
        db_roundtrips_on_miss=2,
        supplier_xml=False,
        alloc_bytes=64,
        servlet_bursts=4,
        container_bursts=11,
    ),
    EcperfTxnType(
        name="order_status",
        domain="customer",
        weight=0.14,
        bean_lookups=6,
        bean_updates=0,
        db_roundtrips_on_miss=1,
        supplier_xml=False,
        alloc_bytes=64,
        servlet_bursts=3,
        container_bursts=6,
    ),
    EcperfTxnType(
        name="customer_status",
        domain="customer",
        weight=0.10,
        bean_lookups=5,
        bean_updates=0,
        db_roundtrips_on_miss=1,
        supplier_xml=False,
        alloc_bytes=64,
        servlet_bursts=3,
        container_bursts=5,
    ),
    EcperfTxnType(
        name="schedule_workorder",
        domain="manufacturing",
        weight=0.18,
        bean_lookups=7,
        bean_updates=4,
        db_roundtrips_on_miss=2,
        supplier_xml=False,
        alloc_bytes=64,
        servlet_bursts=3,
        container_bursts=13,
    ),
    EcperfTxnType(
        name="complete_workorder",
        domain="manufacturing",
        weight=0.10,
        bean_lookups=6,
        bean_updates=4,
        db_roundtrips_on_miss=1,
        supplier_xml=False,
        alloc_bytes=64,
        servlet_bursts=3,
        container_bursts=11,
    ),
    EcperfTxnType(
        name="send_purchase_order",
        domain="supplier",
        weight=0.04,
        bean_lookups=4,
        bean_updates=2,
        db_roundtrips_on_miss=1,
        supplier_xml=True,
        alloc_bytes=256,
        servlet_bursts=2,
        container_bursts=12,
    ),
    EcperfTxnType(
        name="deliver_purchase_order",
        domain="supplier",
        weight=0.02,
        bean_lookups=4,
        bean_updates=3,
        db_roundtrips_on_miss=1,
        supplier_xml=True,
        alloc_bytes=128,
        servlet_bursts=2,
        container_bursts=11,
    ),
]


@dataclass(frozen=True)
class ServiceProfile:
    """A mix reduced to what the load plane's queueing model needs.

    Per transaction type: its probability in the mix, its service
    *weight* (relative demand, normalized so the mix-mean is exactly
    1 — scaling by a mean service time recovers per-type means), and
    the share of that demand spent holding a database connection
    (``db_share``; zero for SPECjbb, whose "database" is in-heap
    trees, per Section 2.1).
    """

    names: tuple[str, ...]
    probs: tuple[float, ...]
    weights: tuple[float, ...]
    db_share: tuple[float, ...]

    def __post_init__(self) -> None:
        lengths = {len(self.names), len(self.probs), len(self.weights), len(self.db_share)}
        if lengths != {len(self.names)} or not self.names:
            raise ConfigError("profile columns must be non-empty and equal-length")
        if any(p <= 0 for p in self.probs) or abs(sum(self.probs) - 1.0) > 1e-9:
            raise ConfigError("type probabilities must be positive and sum to 1")
        if any(w <= 0 for w in self.weights):
            raise ConfigError("service weights must be positive")
        mean = sum(p * w for p, w in zip(self.probs, self.weights))
        if abs(mean - 1.0) > 1e-9:
            raise ConfigError(f"mix-mean weight must be 1, got {mean!r}")
        if any(not 0.0 <= d < 1.0 for d in self.db_share):
            raise ConfigError("db_share must be in [0, 1)")


#: Single-class unit profile — the degenerate mix the M/M/c oracle
#: tests use (one type, no DB phase, mean demand exactly 1).
UNIFORM_PROFILE = ServiceProfile(
    names=("uniform",), probs=(1.0,), weights=(1.0,), db_share=(0.0,)
)


def service_profile(mix: list) -> ServiceProfile:
    """Derive a :class:`ServiceProfile` from a transaction mix.

    A type's raw demand is its instruction-burst count (servlet +
    container bursts for ECperf; code bursts plus tree/item work for
    SPECjbb); the DB share of an ECperf type is the fraction of its
    burst work spent on JDBC round trips while a pooled connection is
    held.

    >>> profile = service_profile(SPECJBB_MIX)
    >>> max(profile.db_share) == 0.0   # SPECjbb: no out-of-process DB
    True
    """
    if not mix:
        raise ConfigError("empty transaction mix")
    total_weight = sum(t.weight for t in mix)
    probs = [t.weight / total_weight for t in mix]
    raw = []
    db_share = []
    for t in mix:
        if isinstance(t, EcperfTxnType):
            bursts = t.servlet_bursts + t.container_bursts
            raw.append(float(bursts + t.db_roundtrips_on_miss))
            db_share.append(
                t.db_roundtrips_on_miss
                / (t.db_roundtrips_on_miss + bursts)
            )
        else:
            raw.append(float(t.code_bursts + t.tree_visits + t.item_lookups))
            db_share.append(0.0)
    mean = sum(p * r for p, r in zip(probs, raw))
    return ServiceProfile(
        names=tuple(t.name for t in mix),
        probs=tuple(probs),
        weights=tuple(r / mean for r in raw),
        db_share=tuple(db_share),
    )


def pick_txn(rng: np.random.Generator, mix: list) -> "JbbTxnType | EcperfTxnType":
    """Sample a transaction type proportionally to its weight."""
    if not mix:
        raise ConfigError("empty transaction mix")
    weights = np.array([t.weight for t in mix], dtype=float)
    cumulative = np.cumsum(weights / weights.sum())
    u = float(rng.random())
    index = int(np.searchsorted(cumulative, u, side="right"))
    return mix[min(index, len(mix) - 1)]
