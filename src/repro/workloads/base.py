"""Workload interface and the per-processor stream builder.

A workload turns (processor count, simulation config, RNG) into a
:class:`TraceBundle`: one encoded reference stream per processor plus
instruction counts and metadata.  The :class:`StreamBuilder` is the
small emission API the concrete workloads compose — fetch bursts,
loads/stores, lock round-trips, tree descents, allocation runs —
keeping every workload's generator readable while the emitted streams
stay flat lists of ints for the simulators.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterator, Protocol, runtime_checkable

import numpy as np

from repro.core.config import SimConfig
from repro.errors import WorkloadError
from repro.jvm.heap import AllocationCursor
from repro.jvm.objects import ObjectTree
from repro.memsys.block import LOAD, STORE, encode_ref
from repro.rng import RngFactory
from repro.workloads.codepath import CodeLayout


@dataclass
class TraceBundle:
    """Generated reference streams for one measurement interval.

    Streams are held as ``uint64`` numpy arrays (the packed encoding of
    :mod:`repro.memsys.block`), so vectorized consumers replay them
    without a Python-list detour; construction still accepts plain
    lists and normalizes.  Scalar consumers that walk references one at
    a time should take :meth:`per_cpu_lists` (Python ints iterate much
    faster than numpy scalars).
    """

    workload: str
    per_cpu: list[np.ndarray]
    instructions: list[int]
    meta: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.per_cpu = [np.asarray(t, dtype=np.uint64) for t in self.per_cpu]

    @property
    def n_procs(self) -> int:
        return len(self.per_cpu)

    @property
    def total_refs(self) -> int:
        return sum(int(t.size) for t in self.per_cpu)

    @property
    def total_instructions(self) -> int:
        return sum(self.instructions)

    def merged(self) -> np.ndarray:
        """All streams concatenated (for uniprocessor sweeps)."""
        if not self.per_cpu:
            return np.empty(0, dtype=np.uint64)
        return np.concatenate(self.per_cpu)

    def per_cpu_lists(self) -> list[list[int]]:
        """Per-processor streams as lists of Python ints."""
        return [t.tolist() for t in self.per_cpu]


@dataclass
class ChunkedTrace:
    """Chunked trace generation: declared lengths plus lazy chunk iterators.

    The streaming counterpart of :class:`TraceBundle`: ``per_cpu[cpu]``
    yields fixed-size ``uint64`` chunks whose concatenation is exactly
    ``TraceBundle.per_cpu[cpu]``, but nothing is materialized until a
    consumer pulls.  ``lengths`` are declared up front (they depend
    only on the simulation config), so replay schedules and warmup
    splits are computed before generation starts.  Iterators for
    different processors are independent: the emission state behind
    each (RNG stream, allocation cursors, stream builder) is
    per-processor, so consumers may interleave them freely.
    """

    lengths: list[int]
    per_cpu: list[Iterator[np.ndarray]]


def emit_chunked_refs(
    builder: "StreamBuilder",
    target: int,
    chunk_refs: int,
    emit_txn: Callable[[], None],
) -> Iterator[np.ndarray]:
    """Drive a transaction emitter, yielding fixed-size ``uint64`` chunks.

    Bit-identical to the materialized loop ``while len(builder.refs) <
    target: emit_txn()`` followed by ``builder.refs[:target]``: the
    emitter is called under exactly the same condition (pending plus
    already-yielded references below target), so it consumes the RNG
    identically, and flushing never touches the RNG.  The final
    transaction's overshoot past ``target`` is dropped, exactly like
    the materialized truncation.  ``builder.refs`` may be pre-seeded
    (pre-warm preambles) and is consumed destructively, so the buffer
    never grows past one transaction beyond ``chunk_refs``.
    """
    if target < 0:
        raise WorkloadError("target must be non-negative")
    if chunk_refs < 1:
        raise WorkloadError("chunk_refs must be >= 1")
    refs = builder.refs
    emitted = 0
    while emitted + len(refs) < target:
        emit_txn()
        while len(refs) >= chunk_refs and emitted + chunk_refs <= target:
            yield np.array(refs[:chunk_refs], dtype=np.uint64)
            del refs[:chunk_refs]
            emitted += chunk_refs
    del refs[target - emitted :]
    while refs:
        yield np.array(refs[:chunk_refs], dtype=np.uint64)
        del refs[:chunk_refs]


class StreamBuilder:
    """Accumulates one processor's reference stream."""

    #: Per-instruction frequency of loads and stores accompanying
    #: straight-line code (locals, spilled registers, field reads the
    #: actions do not model explicitly).  SPARC integer code issues a
    #: memory operation roughly every third instruction.
    LOADS_PER_INSTR = 0.25
    STORES_PER_INSTR = 0.10

    def __init__(self, rng: np.random.Generator, stack_base: int = 0xF000_0000) -> None:
        self.rng = rng
        self.refs: list[int] = []
        self.instructions = 0
        self.stack_base = stack_base
        self._frame_cursor = 0
        self._code_prev = None

    def set_stack(self, stack_base: int) -> None:
        """Switch the active thread context (its stack frames)."""
        self.stack_base = stack_base
        self._code_prev = None  # a context switch breaks fetch locality

    # -- instruction side ---------------------------------------------------

    def code_burst(self, layout: CodeLayout, mean_burst_instr: int = 100) -> None:
        """Emit one hotness-weighted fetch burst plus its local data traffic.

        The burst's loads/stores land in the active thread's stack
        window — hot, private lines that mostly hit in the L1, exactly
        like real locals — so per-1000-instruction miss rates are
        denominated against a realistic reference mix.
        """
        refs, n_instr, self._code_prev = layout.burst(
            self.rng, mean_burst_instr, prev=self._code_prev
        )
        self.refs.extend(refs)
        self.instructions += n_instr
        rng = self.rng
        n_loads = int(n_instr * self.LOADS_PER_INSTR)
        n_stores = int(n_instr * self.STORES_PER_INSTR)
        # Locals cycle within a ~2 KB window of live frames.
        window = self.stack_base + (self._frame_cursor % 4) * 512
        self._frame_cursor += 1
        for _ in range(n_loads):
            offset = int(rng.integers(0, 64)) * 8
            self.refs.append(encode_ref(window + offset, LOAD))
        for _ in range(n_stores):
            offset = int(rng.integers(0, 64)) * 8
            self.refs.append(encode_ref(window + offset, STORE))

    def code_bursts(
        self, layout: CodeLayout, n: int, mean_burst_instr: int = 100
    ) -> None:
        for _ in range(n):
            self.code_burst(layout, mean_burst_instr)

    # -- data side ------------------------------------------------------------

    def load(self, addr: int) -> None:
        self.refs.append(encode_ref(addr, LOAD))

    def store(self, addr: int) -> None:
        self.refs.append(encode_ref(addr, STORE))

    def rmw(self, addr: int) -> None:
        """Read-modify-write (lock word, counter): load then store."""
        self.refs.append(encode_ref(addr, LOAD))
        self.refs.append(encode_ref(addr, STORE))

    def scan(self, base: int, nbytes: int, stride: int = 64, write: bool = False) -> None:
        """Sequential sweep over a buffer (marshalling, copying)."""
        kind = STORE if write else LOAD
        for offset in range(0, nbytes, stride):
            self.refs.append(encode_ref(base + offset, kind))

    def object_access(self, addr: int, n_fields: int = 2, write_fields: int = 0) -> None:
        """Touch an object: read a few fields, optionally write some.

        Field offsets land within the object's first 64 bytes, so one
        object access typically costs one cache line.
        """
        for i in range(n_fields):
            self.refs.append(encode_ref(addr + 8 * (i + 1), LOAD))
        for i in range(write_fields):
            self.refs.append(encode_ref(addr + 8 * (i + 1), STORE))

    def tree_descent(
        self,
        tree: ObjectTree,
        skew: float = 0.0,
        write_leaf: bool = False,
        hot_fraction: float | None = None,
        hot_prob: float = 0.9,
    ) -> int:
        """Descend a database object tree to a leaf; returns the leaf address.

        Interior nodes are read (two fields per node: key compare +
        child pointer); the leaf is read and optionally updated.  When
        ``hot_fraction`` is given, leaves come from the tree's hot
        working set with probability ``hot_prob`` (see
        :meth:`ObjectTree.hot_leaf`); otherwise selection follows
        ``skew``.
        """
        if hot_fraction is not None:
            leaf_index = tree.hot_leaf(self.rng, hot_fraction, hot_prob)
        else:
            leaf_index = tree.random_leaf(self.rng, skew=skew)
        path = tree.path_to_leaf(leaf_index)
        for node_addr in path[:-1]:
            self.refs.append(encode_ref(node_addr + 8, LOAD))
            self.refs.append(encode_ref(node_addr + 16, LOAD))
        leaf = path[-1]
        self.refs.append(encode_ref(leaf + 8, LOAD))
        self.refs.append(encode_ref(leaf + 24, LOAD))
        if write_leaf:
            self.refs.append(encode_ref(leaf + 16, STORE))
        return leaf

    def allocate(self, cursor: AllocationCursor, nbytes: int, stride: int = 64) -> int:
        """Bump-allocate and initialize ``nbytes``; returns the address.

        Initializing stores touch every ``stride`` bytes — the
        compulsory-miss "allocation wall" of Java workloads.
        """
        addr = cursor.allocate(nbytes)
        for offset in range(0, nbytes, stride):
            self.refs.append(encode_ref(addr + offset, STORE))
        return addr

    def stack_work(self, stack_base: int, frames: int = 2) -> None:
        """Hot, private stack traffic for a call subtree."""
        for frame in range(frames):
            base = stack_base + frame * 96
            self.refs.append(encode_ref(base, STORE))
            self.refs.append(encode_ref(base + 32, STORE))
            self.refs.append(encode_ref(base, LOAD))


def code_sweep_refs(layout: CodeLayout) -> list[int]:
    """Fetch every line of every code region once (pre-warm preamble).

    The paper measures steady-state intervals of long-running
    benchmarks, where all hot code has long been resident in the L2.
    Workloads prepend this sweep (plus hot-data sweeps) to each
    processor's trace; it is consumed inside the warmup window, so
    measured rates never charge first-touch misses on code that would
    be warm in any real run.
    """
    from repro.memsys.block import IFETCH

    refs: list[int] = []
    for segment in layout.segments:
        for offset in range(0, segment.code_bytes, 32):
            refs.append(encode_ref(segment.base + offset, IFETCH))
    return refs


def region_sweep_refs(base: int, nbytes: int, stride: int = 64) -> list[int]:
    """Read every line of a data region once (pre-warm preamble)."""
    return [encode_ref(base + off, LOAD) for off in range(0, nbytes, stride)]


@runtime_checkable
class Workload(Protocol):
    """What the characterization framework needs from a workload."""

    name: str

    def generate(
        self, n_procs: int, sim: SimConfig, rng_factory: RngFactory
    ) -> TraceBundle:
        """Reference streams for ``n_procs`` application processors."""
        ...

    def generate_chunks(
        self, n_procs: int, sim: SimConfig, rng_factory: RngFactory, chunk_refs: int
    ) -> ChunkedTrace:
        """The same streams as :meth:`generate`, as lazy chunk iterators.

        Concatenating processor ``cpu``'s chunks must reproduce
        ``generate(...).per_cpu[cpu]`` bit-for-bit.
        """
        ...

    def live_memory_mb(self, scale: int) -> float:
        """Live heap (MB) after GC at benchmark scale ``scale`` (Figure 11)."""
        ...


#: Kernel text and shared kernel data used by the background OS stream.
_KERNEL_CODE_BASE = 0x0100_0000
_KERNEL_DATA_BASE = 0x0180_0000


def os_background_trace(
    rng: np.random.Generator, n_refs: int, shared_lines: list[int] | None = None
) -> list[int]:
    """A light operating-system reference stream.

    The paper observes cache-to-cache transfers even in 1-processor
    runs because Solaris keeps running on processors outside the
    processor set and snoops on the bound processor (Section 4.3).
    This stream models that background: kernel code fetches, kernel
    data, and occasional touches of lines the application also uses
    (run queues, network buffers) passed in as ``shared_lines``.
    """
    if n_refs < 0:
        raise WorkloadError("n_refs must be non-negative")
    from repro.memsys.block import IFETCH  # local to keep module header lean

    refs: list[int] = []
    shared = shared_lines or []
    while len(refs) < n_refs:
        # A short kernel code run.
        base = _KERNEL_CODE_BASE + int(rng.integers(0, 2048)) * 32
        for i in range(8):
            refs.append(encode_ref(base + i * 32, IFETCH))
        # Kernel data touches.
        for _ in range(3):
            addr = _KERNEL_DATA_BASE + int(rng.integers(0, 4096)) * 64
            refs.append(encode_ref(addr, LOAD))
        if shared and float(rng.random()) < 0.3:
            addr = shared[int(rng.integers(0, len(shared)))]
            refs.append(encode_ref(addr, LOAD))
            refs.append(encode_ref(addr, STORE))
    return refs[:n_refs]
