"""Client-driver model and throughput accounting.

ECperf's driver spawns threads modeling customers and manufacturers;
each high-level action is a "Benchmark Business Operation" (BBop) and
performance is BBops/minute (Section 2.2).  The paper relaxes the
90%-response-time requirement and tunes for maximum throughput; the
model does the same — the driver offers load, the server's capacity
(from the throughput model) caps what is absorbed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigError, WorkloadError


@dataclass
class BBopCounter:
    """Counts completed operations and converts to rates."""

    completed: int = 0
    by_type: dict[str, int] = field(default_factory=dict)

    def record(self, txn_name: str, n: int = 1) -> None:
        if n < 0:
            raise WorkloadError("cannot record a negative operation count")
        self.completed += n
        self.by_type[txn_name] = self.by_type.get(txn_name, 0) + n

    def bbops_per_minute(self, elapsed_s: float) -> float:
        if elapsed_s <= 0:
            raise WorkloadError("elapsed time must be positive")
        return 60.0 * self.completed / elapsed_s


@dataclass(frozen=True)
class DriverModel:
    """Offered load from the driver tier.

    ``orders_per_ir_per_s`` converts the Orders Injection Rate into
    offered operations per second; think time shapes concurrency.
    """

    injection_rate: int = 8
    orders_per_ir_per_s: float = 2.5
    think_time_s: float = 1.2

    def __post_init__(self) -> None:
        if self.injection_rate < 1:
            raise ConfigError("injection_rate must be >= 1")
        if self.orders_per_ir_per_s <= 0 or self.think_time_s < 0:
            raise ConfigError("rates must be positive, think time non-negative")

    @property
    def offered_ops_per_s(self) -> float:
        return self.injection_rate * self.orders_per_ir_per_s

    def required_concurrency(self, service_time_s: float) -> float:
        """Little's law: concurrent requests to sustain the offered load.

        ``service_time_s == 0`` is the legitimate infinitely-fast-server
        limit, where the whole population sits in think: ``N = X * Z``.

        >>> DriverModel(injection_rate=8, think_time_s=1.2).required_concurrency(0.0)
        24.0
        """
        if service_time_s < 0:
            raise ConfigError("service_time_s must be non-negative")
        return self.offered_ops_per_s * (service_time_s + self.think_time_s)
