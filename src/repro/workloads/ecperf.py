"""The ECperf middle-tier workload model.

ECperf deploys on a real 3-tier system; the paper measures the
*application server* machine and filters out the other tiers
(Section 3.3).  The model therefore generates the app server's
reference streams, with the database, driver and supplier emulator
appearing only through their effects: JDBC marshalling, kernel
network work, and XML document handling.

The properties the paper measures emerge from the structure:

- **large instruction footprint** — servlet engine + EJB container +
  JDBC + RMI + XML + domain beans (~1 MB of hot code), so
  intermediate instruction caches miss heavily (Figure 12);
- **small, constant data footprint** — the bean cache and pools are
  fixed-size, so scaling the Orders Injection Rate leaves the middle
  tier's memory use flat beyond a small knee (Figure 11);
- **wide sharing** — every worker thread reads and updates beans all
  over the shared cache region, spreading cache-to-cache transfers
  across ~half the touched lines instead of concentrating them
  (Figures 14, 15);
- **kernel time** — each BBop's driver/database/supplier messages
  cost network-stack work that grows with contention (Figure 5).
"""

from __future__ import annotations

import numpy as np

from repro.appserver.beancache import BeanCache
from repro.appserver.container import ApplicationServer, CodeRegionSpec
from repro.appserver.ejb import all_bean_regions, ejb_container_regions
from repro.appserver.servlet import servlet_regions
from repro.core.config import SimConfig
from repro.errors import WorkloadError
from repro.jvm.heap import GenerationalHeap, HeapLayout
from repro.jvm.threads import ThreadRegistry
from repro.osmodel.netstack import KernelNetworkModel
from repro.rng import RngFactory
from repro.workloads import layout
from repro.workloads.base import (
    ChunkedTrace,
    StreamBuilder,
    TraceBundle,
    code_sweep_refs,
    emit_chunked_refs,
    region_sweep_refs,
)
from repro.workloads.codepath import CodeLayout, jvm_runtime_regions
from repro.workloads.database import DatabaseTier
from repro.workloads.mix import ECPERF_MIX, EcperfTxnType, pick_txn


def kernel_net_regions() -> list[CodeRegionSpec]:
    """Kernel network-stack code executed on the app server's behalf."""
    return [
        CodeRegionSpec("kernel.tcp", instructions=10_000, hotness=6.0),
        CodeRegionSpec("kernel.ip", instructions=5_000, hotness=5.0),
        CodeRegionSpec("kernel.socket", instructions=6_000, hotness=6.0),
        CodeRegionSpec("kernel.driver_e100", instructions=4_000, hotness=4.0),
    ]


class EcperfWorkload:
    """Generator of ECperf-app-server-shaped reference streams.

    Args:
        injection_rate: the Orders Injection Rate — the benchmark's
            scale factor.  Unlike SPECjbb's warehouses it barely moves
            the middle tier's footprint (the database grows on
            *another machine*); it mainly sets concurrency.
        threads_per_proc: worker threads per processor (the tuned
            execution-queue size).
    """

    name = "ecperf"

    def __init__(
        self,
        injection_rate: int = 8,
        threads_per_proc: int = 3,
        bean_cache: BeanCache | None = None,
        database: DatabaseTier | None = None,
        heap_layout: HeapLayout | None = None,
    ) -> None:
        if injection_rate < 1:
            raise WorkloadError("injection_rate must be >= 1")
        if threads_per_proc < 1:
            raise WorkloadError("threads_per_proc must be >= 1")
        self.injection_rate = injection_rate
        self.threads_per_proc = threads_per_proc
        self.bean_cache = bean_cache if bean_cache is not None else BeanCache()
        self.database = database if database is not None else DatabaseTier()
        self.code = CodeLayout(
            jvm_runtime_regions()
            + servlet_regions()
            + ejb_container_regions()
            + all_bean_regions()
            + kernel_net_regions(),
            locality=0.65,
            offset_skew=2.2,
        )
        self._heap_layout = heap_layout or HeapLayout()

    # -- trace generation ----------------------------------------------------

    def generate(
        self, n_procs: int, sim: SimConfig, rng_factory: RngFactory
    ) -> TraceBundle:
        if n_procs < 1:
            raise WorkloadError("n_procs must be >= 1")
        heap = GenerationalHeap(self._heap_layout)
        server = ApplicationServer.tuned_for(n_procs)
        registry = ThreadRegistry(n_procs)
        n_threads = n_procs * self.threads_per_proc
        share = 1.0 / n_threads
        threads = [registry.spawn(cursor=heap.cursor(share)) for _ in range(n_threads)]
        per_cpu: list[list[int]] = []
        instructions: list[int] = []
        for cpu in range(n_procs):
            rng = rng_factory.stream(f"ecperf.cpu{cpu}")
            builder = StreamBuilder(rng)
            cpu_threads = [t for t in threads if t.cpu == cpu]
            prewarm = self._prewarm_refs(cpu_threads)
            if len(prewarm) <= 0.8 * sim.warmup_fraction * sim.refs_per_proc:
                builder.refs.extend(prewarm)
            turn = 0
            while len(builder.refs) < sim.refs_per_proc:
                thread = cpu_threads[turn % len(cpu_threads)]
                turn += 1
                txn = pick_txn(rng, ECPERF_MIX)
                self._bbop(builder, thread, txn, n_threads)
            per_cpu.append(builder.refs[: sim.refs_per_proc])
            instructions.append(builder.instructions)
        return TraceBundle(
            workload=self.name,
            per_cpu=per_cpu,
            instructions=instructions,
            meta={
                "injection_rate": self.injection_rate,
                "code_bytes": self.code.total_code_bytes,
                "bean_cache_bytes": self.bean_cache.footprint_bytes,
                "thread_pool": server.threads.size,
                "connection_pool": server.connections.size,
            },
        )

    def generate_chunks(
        self, n_procs: int, sim: SimConfig, rng_factory: RngFactory, chunk_refs: int
    ) -> ChunkedTrace:
        """The :meth:`generate` streams as lazy fixed-size chunks.

        Shares the thread registry, heap cursors, RNG streams, and
        transaction bodies with the materialized path via
        :func:`repro.workloads.base.emit_chunked_refs`; each
        processor's concatenated chunks are bit-identical to
        ``generate(...).per_cpu[cpu]``, and the per-processor
        iterators may be interleaved (the bean cache's hit bookkeeping
        never feeds back into addresses).
        """
        if n_procs < 1:
            raise WorkloadError("n_procs must be >= 1")
        heap = GenerationalHeap(self._heap_layout)
        ApplicationServer.tuned_for(n_procs)
        registry = ThreadRegistry(n_procs)
        n_threads = n_procs * self.threads_per_proc
        share = 1.0 / n_threads
        threads = [registry.spawn(cursor=heap.cursor(share)) for _ in range(n_threads)]
        lengths: list[int] = []
        per_cpu: list = []
        for cpu in range(n_procs):
            rng = rng_factory.stream(f"ecperf.cpu{cpu}")
            builder = StreamBuilder(rng)
            cpu_threads = [t for t in threads if t.cpu == cpu]
            prewarm = self._prewarm_refs(cpu_threads)
            if len(prewarm) <= 0.8 * sim.warmup_fraction * sim.refs_per_proc:
                builder.refs.extend(prewarm)
            per_cpu.append(
                emit_chunked_refs(
                    builder,
                    sim.refs_per_proc,
                    chunk_refs,
                    self._bbop_emitter(builder, cpu_threads, n_threads),
                )
            )
            lengths.append(sim.refs_per_proc)
        return ChunkedTrace(lengths=lengths, per_cpu=per_cpu)

    def _bbop_emitter(self, builder: StreamBuilder, cpu_threads, n_threads: int):
        """One round-robin BBop per call, same RNG draws as the
        materialized loop body."""
        turn = 0

        def emit() -> None:
            nonlocal turn
            thread = cpu_threads[turn % len(cpu_threads)]
            turn += 1
            txn = pick_txn(builder.rng, ECPERF_MIX)
            self._bbop(builder, thread, txn, n_threads)

        return emit

    def _prewarm_refs(self, cpu_threads) -> list[int]:
        """Pre-warm preamble: hot code, bean-cache warm core, buffers.

        Consumed inside the warmup window; see
        :func:`repro.workloads.base.code_sweep_refs`.
        """
        refs = code_sweep_refs(self.code)
        warm_core = (
            int(0.015 * self.bean_cache.capacity_beans) * self.bean_cache.bean_size
        )
        refs.extend(region_sweep_refs(self.bean_cache.base_addr, warm_core))
        for thread in cpu_threads:
            refs.extend(
                region_sweep_refs(
                    layout.SESSION_BASE + thread.tid * layout.SESSION_STRIDE, 4096
                )
            )
            refs.extend(
                region_sweep_refs(self.database.marshal_buffer_addr(thread.tid), 8192)
            )
        return refs

    def _bbop(
        self, b: StreamBuilder, thread, txn: EcperfTxnType, n_threads: int
    ) -> None:
        """Emit one Benchmark Business Operation for ``thread``."""
        rng = b.rng
        b.set_stack(thread.stack_base)
        # Driver request arrives: kernel receive + servlet dispatch
        # (keep-alive batching delivers several requests per frame).
        if float(rng.random()) < 0.6:
            self._kernel_receive(b)
        b.code_burst(self.code, mean_burst_instr=140)
        b.rmw(layout.THREAD_POOL_QUEUE)  # take a pooled worker
        b.stack_work(thread.stack_base, frames=3)
        session = layout.SESSION_BASE + thread.tid * layout.SESSION_STRIDE
        b.object_access(session, n_fields=3, write_fields=1)
        for _ in range(txn.servlet_bursts):
            b.code_burst(self.code, mean_burst_instr=140)
        # Business logic: bean-cache lookups, with DB round trips on miss.
        updates_left = txn.bean_updates
        for lookup in range(txn.bean_lookups):
            if lookup % 2 == 1:
                b.code_burst(self.code, mean_burst_instr=140)
            bean_addr = self.bean_cache.lookup(rng, n_threads)
            if bean_addr is None:
                self._db_roundtrip(b, thread, txn.db_roundtrips_on_miss)
                # The fetched bean is installed in the shared cache;
                # fetched beans are usually active ones near the warm core.
                u = float(rng.random()) ** 8
                bean_addr = self.bean_cache.bean_addr(
                    min(
                        int(u * self.bean_cache.capacity_beans),
                        self.bean_cache.capacity_beans - 1,
                    )
                )
                b.store(bean_addr + 8)
            write = updates_left > 0 and float(rng.random()) < 0.5
            if write:
                updates_left -= 1
            b.object_access(bean_addr, n_fields=3, write_fields=1 if write else 0)
        for _ in range(updates_left):
            # Remaining updates hit beans this BBop already holds.
            bean_addr = self.bean_cache.lookup(rng, n_threads)
            if bean_addr is not None:
                b.object_access(bean_addr, n_fields=1, write_fields=1)
        for _ in range(txn.container_bursts):
            b.code_burst(self.code, mean_burst_instr=140)
        if txn.supplier_xml:
            # Exchange an XML document with the supplier emulator.
            buffer = self.database.marshal_buffer_addr(thread.tid)
            b.scan(buffer, 4096, write=True)  # build the document
            b.code_bursts(self.code, 3, mean_burst_instr=140)  # xml parser + net client
            self._kernel_send(b, thread)
        if txn.alloc_bytes > 0 and thread.cursor is not None:
            b.allocate(thread.cursor, txn.alloc_bytes)
        if float(rng.random()) < 0.06:
            # Clock-tick bookkeeping on this CPU's run queue.
            b.rmw(layout.RUNQUEUE_BASE + thread.cpu * 64)
        # Driver response: kernel send.
        self._kernel_send(b, thread)
        b.store(layout.THREAD_POOL_QUEUE)  # return the worker

    def _db_roundtrip(self, b: StreamBuilder, thread, n: int) -> None:
        """JDBC round trips: pool lock, kernel work, result marshalling."""
        for _ in range(max(1, n)):
            b.rmw(layout.CONN_POOL_LOCK)
            slot = thread.tid % 16
            b.rmw(layout.POOL_SLOTS_BASE + slot * 64)
            b.code_bursts(self.code, 2, mean_burst_instr=140)  # JDBC driver + kernel net
            if float(b.rng.random()) < 0.5:
                self._kernel_receive(b)  # the DB's response arrives by DMA
            buffer = self.database.marshal_buffer_addr(thread.tid)
            b.scan(buffer, self.database.result_bytes(), write=True)
            b.scan(buffer, self.database.result_bytes(), write=False)
            b.store(layout.CONN_POOL_LOCK)

    def _kernel_send(self, b: StreamBuilder, thread) -> None:
        """Kernel network transmit path: shared buffer pool + stack code."""
        rng = b.rng
        b.code_burst(self.code, mean_burst_instr=140)
        nbuf = layout.NET_BUFFER_POOL + int(rng.integers(0, 64)) * 256
        b.rmw(nbuf)
        b.scan(nbuf, 512, write=True)

    #: The NIC DMA-writes arriving frames into a ring that cycles far
    #: beyond what stays L2-resident, so receive-path reads are genuine
    #: memory fetches (Figure 7's "Mem" component for ECperf).
    _RX_RING_BASE = 0x0900_0000
    _RX_RING_BYTES = 4 * 1024 * 1024

    def _kernel_receive(self, b: StreamBuilder) -> None:
        """Kernel receive path: read a freshly DMA'd frame."""
        rng = b.rng
        offset = int(rng.integers(0, self._RX_RING_BYTES // 128)) * 128
        b.scan(self._RX_RING_BASE + offset, 64, write=False)
        b.code_burst(self.code, mean_burst_instr=140)

    # -- analytic models -------------------------------------------------------

    def live_memory_mb(self, scale: int) -> float:
        """Live heap after GC at Orders Injection Rate ``scale`` (Figure 11).

        Rises while concurrency ramps (more in-flight orders and
        sessions), then flattens around IR ~6: the bean cache and
        pools are fixed-size, and the growing database lives on
        another machine.
        """
        if scale < 1:
            raise WorkloadError("scale must be >= 1")
        base_mb = 45.0
        per_ir_mb = 12.0
        knee = 6
        return base_mb + per_ir_mb * min(scale, knee) + 0.15 * max(0, scale - knee)

    @property
    def kernel_time_model(self) -> KernelNetworkModel:
        """ECperf's tiers communicate through the OS (Figure 5)."""
        return KernelNetworkModel()
