"""Simulated address-space map.

Every region the workload generators emit addresses into is declared
here, with an overlap check the test suite runs.  The map loosely
follows a Solaris/HotSpot process image: kernel low, application text
above it, then the Java heap (new generation, then the old generation
where long-lived data like SPECjbb's warehouse trees lives), with
thread stacks at the top.

Layout (one address space per simulated machine)::

    0x0100_0000  kernel text / kernel data
    0x0800_0000  shared runtime structures (locks, pools, counters)
    0x0A00_0000  per-thread marshalling buffers
    0x0B00_0000  per-thread session objects
    0x0C00_0000  bean cache (ECperf object-level cache)
    0x1000_0000  application + middleware text
    0x2000_0000  new generation (400 MB)
    0x5000_0000  SPECjbb global item tree (shared, read-mostly)
    0x6000_0000  old generation: warehouse data (24 MB stride per warehouse)
    0xF000_0000  thread stacks (1 MB per thread)
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.units import kb, mb

KERNEL_TEXT_BASE = 0x0100_0000
KERNEL_DATA_BASE = 0x0180_0000

#: Shared runtime structures — the hot, contended lines.
SHARED_BASE = 0x0800_0000
GLOBAL_HEAP_LOCK = SHARED_BASE + 0x00  # JVM-wide allocation/monitor lock
COMPANY_LOCK = SHARED_BASE + 0x40  # SPECjbb company-level lock
COMPANY_TOTALS = SHARED_BASE + 0x80  # SPECjbb company counters
CONN_POOL_LOCK = SHARED_BASE + 0xC0  # ECperf connection-pool lock
THREAD_POOL_QUEUE = SHARED_BASE + 0x100  # ECperf execution-queue head
POOL_SLOTS_BASE = SHARED_BASE + 0x1000  # per-connection slot records
NET_BUFFER_POOL = SHARED_BASE + 0x8000  # kernel network buffer pool
RUNQUEUE_BASE = SHARED_BASE + 0x7000  # per-CPU scheduler run queues

MARSHAL_BUFFER_BASE = 0x0A00_0000
MARSHAL_BUFFER_STRIDE = kb(16)

SESSION_BASE = 0x0B00_0000
SESSION_STRIDE = kb(64)

BEAN_CACHE_BASE = 0x0C00_0000

APP_TEXT_BASE = 0x1000_0000

NEW_GEN_BASE = 0x2000_0000
NEW_GEN_SIZE = mb(400)

ITEM_TREE_BASE = 0x5000_0000

WAREHOUSE_BASE = 0x6000_0000
WAREHOUSE_STRIDE = mb(24)
MAX_WAREHOUSES = 40

STACK_BASE = 0xF000_0000
STACK_STRIDE = mb(1)


@dataclass(frozen=True)
class Region:
    """A named address range (end exclusive)."""

    name: str
    start: int
    end: int

    def __post_init__(self) -> None:
        if not 0 <= self.start < self.end:
            raise ConfigError(f"region {self.name}: invalid range")

    def overlaps(self, other: "Region") -> bool:
        return self.start < other.end and other.start < self.end


def address_map() -> list[Region]:
    """The full region list, ordered by start address."""
    return [
        Region("kernel_text", KERNEL_TEXT_BASE, KERNEL_TEXT_BASE + mb(4)),
        Region("kernel_data", KERNEL_DATA_BASE, KERNEL_DATA_BASE + mb(4)),
        Region("shared_runtime", SHARED_BASE, SHARED_BASE + mb(1)),
        Region("marshal_buffers", MARSHAL_BUFFER_BASE, MARSHAL_BUFFER_BASE + mb(8)),
        Region("sessions", SESSION_BASE, SESSION_BASE + mb(16)),
        Region("bean_cache", BEAN_CACHE_BASE, BEAN_CACHE_BASE + mb(32)),
        Region("app_text", APP_TEXT_BASE, APP_TEXT_BASE + mb(16)),
        Region("new_gen", NEW_GEN_BASE, NEW_GEN_BASE + NEW_GEN_SIZE),
        Region("item_tree", ITEM_TREE_BASE, ITEM_TREE_BASE + mb(16)),
        Region(
            "warehouses",
            WAREHOUSE_BASE,
            WAREHOUSE_BASE + MAX_WAREHOUSES * WAREHOUSE_STRIDE,
        ),
        Region("stacks", STACK_BASE, STACK_BASE + 64 * STACK_STRIDE),
    ]


def check_no_overlaps() -> None:
    """Raise ConfigError if any two regions overlap (test hook)."""
    regions = sorted(address_map(), key=lambda r: r.start)
    for a, b in zip(regions, regions[1:]):
        if a.overlaps(b):
            raise ConfigError(f"regions {a.name} and {b.name} overlap")
