"""repro — reproduction of "Memory System Behavior of Java-Based Middleware".

Karlsson, Moore, Hagersten & Wood, HPCA 2003.

The package provides, from the bottom up:

- :mod:`repro.memsys` — a multiprocessor memory-system simulator
  (set-associative caches, MOSI snooping coherence, shared-L2 CMP
  configurations, store buffer, TLB);
- :mod:`repro.jvm` — a generational JVM heap with a single-threaded
  copying collector;
- :mod:`repro.appserver`, :mod:`repro.osmodel`, :mod:`repro.net` —
  the application-server, OS and network substrate models;
- :mod:`repro.workloads` — synthetic SPECjbb2000 and ECperf workload
  models that generate multi-threaded memory reference streams;
- :mod:`repro.cpu`, :mod:`repro.perfmodel` — the CPI/stall
  decomposition and throughput-scaling models;
- :mod:`repro.figures` — one driver per paper figure (4-16);
- :mod:`repro.harness` — the parallel experiment engine under every
  figure, sweep and multi-run experiment (process-pool fan-out,
  content-addressed result caching, JSONL telemetry, fault policy).

Quickstart::

    from repro import quick_characterization
    print(quick_characterization("specjbb", warehouses=4))
"""

from repro.core.config import (
    E6000,
    CacheConfig,
    MachineConfig,
    SimConfig,
    cmp_machine,
    e6000_machine,
)
from repro.core.characterize import (
    CharacterizationReport,
    characterize,
    quick_characterization,
)
from repro.core.experiment import Experiment, MultiRunResult, run_repeated
from repro.core.metrics import CpiBreakdown, DataStallBreakdown, MissCounters, mpki
from repro.core.sweep import SweepResult, sweep
from repro.harness import (
    FaultPolicy,
    ResultCache,
    Task,
    TaskFailure,
    TaskOutcome,
    Telemetry,
    run_tasks,
)
from repro.errors import (
    AnalysisError,
    ConfigError,
    ReproError,
    SimulationError,
    WorkloadError,
)
from repro.memsys import (
    E6000_LATENCIES,
    LatencyBook,
    MemoryHierarchy,
    MOSIBus,
    MultiConfigSimulator,
    SetAssociativeCache,
    StackDistanceProfiler,
    StoreBuffer,
    Tlb,
    simulate_miss_curve,
)
from repro.rng import RngFactory

__version__ = "1.0.0"

__all__ = [
    "E6000",
    "CacheConfig",
    "MachineConfig",
    "SimConfig",
    "cmp_machine",
    "e6000_machine",
    "CharacterizationReport",
    "characterize",
    "quick_characterization",
    "Experiment",
    "MultiRunResult",
    "run_repeated",
    "SweepResult",
    "sweep",
    "FaultPolicy",
    "ResultCache",
    "Task",
    "TaskFailure",
    "TaskOutcome",
    "Telemetry",
    "run_tasks",
    "CpiBreakdown",
    "DataStallBreakdown",
    "MissCounters",
    "mpki",
    "AnalysisError",
    "ConfigError",
    "ReproError",
    "SimulationError",
    "WorkloadError",
    "E6000_LATENCIES",
    "LatencyBook",
    "MemoryHierarchy",
    "MOSIBus",
    "MultiConfigSimulator",
    "SetAssociativeCache",
    "StackDistanceProfiler",
    "StoreBuffer",
    "Tlb",
    "simulate_miss_curve",
    "RngFactory",
    "__version__",
]
